package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/data"
)

// innerPlatform is a minimal healthy platform: every execution
// succeeds and returns no exits (the schedules under test never let
// data flow matter).
type innerPlatform struct {
	id    engine.PlatformID
	calls int
}

func (p *innerPlatform) ID() engine.PlatformID         { return p.id }
func (p *innerPlatform) Profile() engine.Profile       { return engine.Profile{Description: "stub"} }
func (p *innerPlatform) NativeFormat() channel.Format  { return channel.Format("stub") }
func (p *innerPlatform) RegisterConverters(*channel.Registry) {}
func (p *innerPlatform) ExecuteAtom(ctx context.Context, atom *engine.TaskAtom, inputs engine.AtomInputs) (map[int]*channel.Channel, engine.Metrics, error) {
	p.calls++
	return map[int]*channel.Channel{}, engine.Metrics{Jobs: 1}, nil
}

func atom(id int) *engine.TaskAtom {
	return &engine.TaskAtom{ID: id, Kind: engine.AtomCompute, Platform: "stub"}
}

func TestFailFirstNPerAtom(t *testing.T) {
	inner := &innerPlatform{id: "stub"}
	p := Wrap(inner, Options{Schedules: []Schedule{FailFirstN(2, nil)}})
	ctx := context.Background()
	for _, atomID := range []int{1, 2} {
		for call := 1; call <= 3; call++ {
			_, _, err := p.ExecuteAtom(ctx, atom(atomID), nil)
			if call <= 2 {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("atom %d call %d: err = %v, want injected", atomID, call, err)
				}
				if !engine.IsTransient(err) {
					t.Fatalf("injected error not classified transient: %v", err)
				}
			} else if err != nil {
				t.Fatalf("atom %d call %d: unexpected err %v", atomID, call, err)
			}
		}
	}
	if st := p.Stats(); st.Calls != 6 || st.Injected != 4 {
		t.Errorf("stats = %+v, want 6 calls / 4 injected", st)
	}
	if inner.calls != 2 {
		t.Errorf("inner platform saw %d calls, want 2", inner.calls)
	}
	if p.CallsFor(1) != 3 {
		t.Errorf("CallsFor(1) = %d", p.CallsFor(1))
	}
}

func TestFailEveryKthAndAfterNAreGlobal(t *testing.T) {
	boom := errors.New("boom")
	p := Wrap(&innerPlatform{id: "stub"}, Options{Schedules: []Schedule{FailEveryKth(3, boom)}})
	ctx := context.Background()
	var failures []int
	for call := 1; call <= 9; call++ {
		// Distinct atoms: the counter must be platform-global.
		if _, _, err := p.ExecuteAtom(ctx, atom(call), nil); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("call %d: wrong cause %v", call, err)
			}
			failures = append(failures, call)
		}
	}
	if len(failures) != 3 || failures[0] != 3 || failures[1] != 6 || failures[2] != 9 {
		t.Errorf("FailEveryKth(3) failed calls %v, want [3 6 9]", failures)
	}

	p = Wrap(&innerPlatform{id: "stub"}, Options{Schedules: []Schedule{FailAfterN(2, nil)}})
	for call := 1; call <= 4; call++ {
		_, _, err := p.ExecuteAtom(ctx, atom(call), nil)
		if call <= 2 && err != nil {
			t.Fatalf("call %d failed before cutoff: %v", call, err)
		}
		if call > 2 && !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d succeeded after cutoff", call)
		}
	}
}

func TestFailMatchingAndKill(t *testing.T) {
	ctx := context.Background()
	p := Wrap(&innerPlatform{id: "stub"}, Options{Schedules: []Schedule{
		FailMatching(func(a *engine.TaskAtom) bool { return a.ID == 7 }, nil),
	}})
	if _, _, err := p.ExecuteAtom(ctx, atom(1), nil); err != nil {
		t.Fatalf("non-matching atom failed: %v", err)
	}
	if _, _, err := p.ExecuteAtom(ctx, atom(7), nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching atom err = %v", err)
	}

	p.Kill(nil)
	if _, _, err := p.ExecuteAtom(ctx, atom(1), nil); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed platform err = %v", err)
	}
	p.Revive()
	if _, _, err := p.ExecuteAtom(ctx, atom(1), nil); err != nil {
		t.Fatalf("revived platform failed: %v", err)
	}
}

func TestLatencyIsDeterministicAndCancellable(t *testing.T) {
	mk := func() *Platform {
		return Wrap(&innerPlatform{id: "stub"}, Options{
			Latency: time.Millisecond, LatencyJitter: time.Millisecond, Seed: 42,
		})
	}
	// Jitter is a pure function of (seed, atom, call): two fresh
	// wrappers must compute identical delays.
	a, b := mk(), mk()
	for call := 1; call <= 5; call++ {
		if da, db := a.delay(3, call), b.delay(3, call); da != db {
			t.Fatalf("call %d: delays differ (%v vs %v)", call, da, db)
		} else if da < time.Millisecond || da >= 2*time.Millisecond {
			t.Fatalf("call %d: delay %v outside [1ms, 2ms)", call, da)
		}
	}

	slow := Wrap(&innerPlatform{id: "stub"}, Options{Latency: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := slow.ExecuteAtom(ctx, atom(1), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency err = %v", err)
	}
	if st := slow.Stats(); st.Cancelled != 1 {
		t.Errorf("stats = %+v, want Cancelled 1", st)
	}
}

func TestRegisterClonesDonorMappings(t *testing.T) {
	reg := engine.NewRegistry()
	donor := &innerPlatform{id: "donor"}
	if err := reg.RegisterPlatform(donor); err != nil {
		t.Fatal(err)
	}
	// Give the donor a mapping so there is something to clone. Cost
	// models live in the optimizer tests; any non-nil model works.
	m := engine.Mapping{Platform: "donor", Cost: cost.ConstModel(cost.Cost{})}
	if err := reg.RegisterMapping(m); err != nil {
		t.Fatal(err)
	}
	p := Wrap(&innerPlatform{id: "donor"}, Options{ID: "chaos"})
	if p.ID() != "chaos" {
		t.Fatalf("ID override ignored: %s", p.ID())
	}
	if err := Register(reg, p, "donor"); err != nil {
		t.Fatal(err)
	}
	var cloned int
	for _, m := range reg.Mappings() {
		if m.Platform == "chaos" {
			cloned++
		}
	}
	if cloned != 1 {
		t.Errorf("cloned %d mappings onto the wrapper, want 1", cloned)
	}
}

// sharderPlatform is an innerPlatform that can also split natively.
type sharderPlatform struct {
	innerPlatform
	splits int
}

func (p *sharderPlatform) SplitNative(ch *channel.Channel, n int) ([]*channel.Channel, error) {
	p.splits++
	return channel.Partition(ch, n)
}

func TestSplitNativeForwardsToInner(t *testing.T) {
	inner := &sharderPlatform{innerPlatform: innerPlatform{id: "stub"}}
	// A schedule that would fail every execution must NOT fire on a
	// split: splitting is metadata work, faults target ExecuteAtom.
	p := Wrap(inner, Options{Schedules: []Schedule{FailFirstN(100, nil)}})
	recs := make([]data.Record, 8)
	for i := range recs {
		recs[i] = data.NewRecord(data.Int(int64(i)))
	}
	shards, err := p.SplitNative(channel.NewCollection(recs), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 || inner.splits != 1 {
		t.Errorf("forwarded split = %d shards, %d inner calls", len(shards), inner.splits)
	}
}

func TestSplitNativeErrorsWhenInnerCannotShard(t *testing.T) {
	// The executor treats this error as "fall back to hub-format
	// splitting", so it must surface rather than panic or silently split.
	p := Wrap(&innerPlatform{id: "stub"}, Options{})
	if _, err := p.SplitNative(channel.NewCollection(nil), 4); err == nil {
		t.Error("SplitNative on a non-sharder inner platform succeeded")
	}
}
