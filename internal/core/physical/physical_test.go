package physical

import (
	"strings"
	"testing"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

func buildLogical(t *testing.T) *plan.Plan {
	t.Helper()
	b := plan.NewBuilder("p")
	s := b.Source("src", plan.Collection(nil))
	f := b.Filter(s, func(data.Record) (bool, error) { return true, nil })
	g := b.GroupBy(f, plan.FieldKey(0), func(_ data.Value, recs []data.Record) ([]data.Record, error) {
		return recs, nil
	})
	b.Collect(g)
	return b.MustBuild()
}

func TestFromLogical(t *testing.T) {
	p, err := FromLogical(buildLogical(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) != 4 {
		t.Fatalf("got %d physical ops", len(p.Ops))
	}
	if p.SinkOp == nil || p.SinkOp.Kind() != plan.KindSink {
		t.Error("sink not identified")
	}
	for _, op := range p.Ops {
		if op.Algo != "" && op.Algo != Default {
			t.Errorf("%s has premature algorithm %s", op.Name(), op.Algo)
		}
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFromLogicalLoopBody(t *testing.T) {
	bb := plan.NewBodyBuilder("body")
	in := bb.LoopInput("st")
	m := bb.Map(in, plan.Identity())
	bb.Collect(m)
	body := bb.MustBuild()

	b := plan.NewBuilder("p")
	s := b.Source("src", plan.Collection(nil))
	rep := b.Repeat(s, 2, body)
	b.Collect(rep)
	lp := b.MustBuild()

	p, err := FromLogical(lp)
	if err != nil {
		t.Fatal(err)
	}
	var repOp *Operator
	for _, op := range p.Ops {
		if op.Kind() == plan.KindRepeat {
			repOp = op
		}
	}
	if repOp == nil || repOp.Body == nil {
		t.Fatal("Repeat physical op lacks body plan")
	}
	if len(repOp.Body.Ops) != 3 {
		t.Errorf("body has %d ops", len(repOp.Body.Ops))
	}
}

func TestCandidates(t *testing.T) {
	p, _ := FromLogical(buildLogical(t))
	var groupOp *Operator
	for _, op := range p.Ops {
		if op.Kind() == plan.KindGroupBy {
			groupOp = op
		}
	}
	algos := Candidates(groupOp)
	if len(algos) != 2 || algos[0] != HashGroupBy || algos[1] != SortGroupBy {
		t.Errorf("GroupBy candidates = %v", algos)
	}

	// ThetaJoin with declarative conditions offers IEJoin.
	b := plan.NewBuilder("tj")
	l := b.Source("l", plan.Collection(nil))
	r := b.Source("r", plan.Collection(nil))
	tj := b.ThetaJoin(l, r, nil, plan.IECondition{LeftField: 0, Op: plan.Less, RightField: 0})
	b.Collect(tj)
	pp, err := FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindThetaJoin {
			algos := Candidates(op)
			if algos[0] != IEJoin {
				t.Errorf("conditioned ThetaJoin candidates = %v", algos)
			}
		}
	}
}

func TestRemoveAndNormalize(t *testing.T) {
	p, _ := FromLogical(buildLogical(t))
	var filterOp *Operator
	for _, op := range p.Ops {
		if op.Kind() == plan.KindFilter {
			filterOp = op
		}
	}
	if err := p.Remove(filterOp); err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) != 3 {
		t.Fatalf("got %d ops after removal", len(p.Ops))
	}
	if err := p.Validate(); err != nil {
		t.Errorf("plan invalid after removal: %v", err)
	}
	// Removing the sink must fail.
	if err := p.Remove(p.SinkOp); err == nil {
		t.Error("removed the sink")
	}
}

func TestNewEnhancerAndNormalize(t *testing.T) {
	p, _ := FromLogical(buildLogical(t))
	var filterOp, groupOp *Operator
	for _, op := range p.Ops {
		switch op.Kind() {
		case plan.KindFilter:
			filterOp = op
		case plan.KindGroupBy:
			groupOp = op
		}
	}
	// Insert an identity-map enhancer between filter and group.
	enh := p.NewEnhancer(&plan.Operator{}, filterOp)
	_ = enh
	// The synthesized logical operator must behave like a Map; build a
	// real one through a body builder trick is overkill — enhancers in
	// practice are built by apps with proper logical ops. Here we only
	// verify wiring and ordering.
	groupOp.ReplaceInput(filterOp, enh)
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Enhancer must be ordered before its consumer.
	pos := map[int]int{}
	for i, op := range p.Ops {
		pos[op.ID] = i
	}
	if pos[enh.ID] > pos[groupOp.ID] {
		t.Error("Normalize left enhancer after consumer")
	}
	if !strings.Contains(enh.Name(), "+") {
		t.Errorf("enhancer name %q lacks marker", enh.Name())
	}
}

func TestNormalizeDetectsCycle(t *testing.T) {
	p, _ := FromLogical(buildLogical(t))
	// Wire a cycle: filter consumes group.
	var filterOp, groupOp *Operator
	for _, op := range p.Ops {
		switch op.Kind() {
		case plan.KindFilter:
			filterOp = op
		case plan.KindGroupBy:
			groupOp = op
		}
	}
	filterOp.Inputs[0] = groupOp
	if err := p.Normalize(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestPlanString(t *testing.T) {
	p, _ := FromLogical(buildLogical(t))
	p.Ops[2].Algo = SortGroupBy
	out := p.String()
	if !strings.Contains(out, "sort-groupby") {
		t.Errorf("String misses algorithm:\n%s", out)
	}
}
