// Package physical implements RHEEM's core-layer operator pool.
//
// A physical operator is "a platform-independent implementation of a
// logical operator ... representing an algorithmic decision for
// executing an analytic task" (paper §3.1). Concretely, a physical
// operator here is a node that wraps a logical operator (the paper's
// *wrapper* operator, carrying the user's UDF) or stands on its own as
// an *enhancer* operator inserted by an optimizer to bridge signature
// gaps, plus an Algorithm tag naming the algorithmic decision (e.g.
// SortGroupBy vs HashGroupBy — the paper's Example 2).
//
// Physical plans still say nothing about platforms: the same physical
// plan can execute on the single-node engine, the Spark simulator, the
// relational engine, or a mix — that choice is the multi-platform
// optimizer's (package optimizer), guided by declarative mappings
// (package engine).
package physical

import (
	"fmt"
	"strings"
	"sync/atomic"

	"rheem/internal/core/plan"
)

// Algorithm names an algorithmic decision for executing an operator.
// The zero value Default means "the kind's only sensible algorithm".
type Algorithm string

// The algorithm pool. Registering a new algorithm (the paper's IEJoin
// story) means adding a constant here, a kernel in package algo, and
// declarative mappings — no optimizer changes.
const (
	Default       Algorithm = "default"
	HashGroupBy   Algorithm = "hash-groupby"
	SortGroupBy   Algorithm = "sort-groupby"
	HashJoin      Algorithm = "hash-join"
	SortMergeJoin Algorithm = "sort-merge-join"
	NestedLoop    Algorithm = "nested-loop"
	IEJoin        Algorithm = "ie-join"
	HashDistinct  Algorithm = "hash-distinct"
	SortDistinct  Algorithm = "sort-distinct"
)

// Operator is a node of a physical plan.
type Operator struct {
	ID       int
	Logical  *plan.Operator // wrapped logical operator; nil only for enhancers
	Algo     Algorithm      // chosen algorithm (Default until the optimizer decides)
	Enhancer bool           // inserted by an optimizer, not written by the user
	Inputs   []*Operator
	Body     *Plan // physical body plan for Repeat/DoWhile
}

// Kind returns the wrapped logical operator's kind.
func (o *Operator) Kind() plan.OpKind { return o.Logical.Kind() }

// Name renders the operator with its algorithm for plan printouts.
func (o *Operator) Name() string {
	n := o.Logical.Name()
	if o.Enhancer {
		n += "+"
	}
	if o.Algo != Default && o.Algo != "" {
		n += "[" + string(o.Algo) + "]"
	}
	return n
}

// Plan is a DAG of physical operators with one sink, in topological
// order. Unlike logical plans, physical plans are mutable: optimizer
// rules edit them in place through the rewrite helpers below.
//
// Operator IDs are unique across a plan *tree* — a plan and all its
// nested loop bodies share one ID space — so cardinality estimates and
// platform assignments can be keyed by ID globally.
type Plan struct {
	Name   string
	Ops    []*Operator
	SinkOp *Operator
	// nextID is shared across the plan tree and bumped atomically so
	// enhancer insertion stays race-free even if rules run while other
	// goroutines (e.g. the executor's audit) hold plan references.
	nextID *atomic.Int64
}

// FromLogical translates a validated logical plan into a physical plan
// by wrapping every logical operator (the application optimizer's
// baseline translation, §4.1). Loop bodies are translated recursively.
// All algorithms start as Default; the core-layer optimizer refines
// them.
func FromLogical(p *plan.Plan) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("physical: %w", err)
	}
	return fromLogical(p, new(atomic.Int64))
}

func fromLogical(p *plan.Plan, counter *atomic.Int64) (*Plan, error) {
	out := &Plan{Name: p.Name(), nextID: counter}
	byLogical := make(map[int]*Operator, len(p.Operators()))
	for _, lop := range p.Operators() {
		pop := &Operator{ID: int(counter.Add(1) - 1), Logical: lop}
		for _, in := range lop.Inputs() {
			pop.Inputs = append(pop.Inputs, byLogical[in.ID()])
		}
		if lop.Body != nil {
			body, err := fromLogical(lop.Body, counter)
			if err != nil {
				return nil, err
			}
			pop.Body = body
		}
		byLogical[lop.ID()] = pop
		out.Ops = append(out.Ops, pop)
		if lop == p.Sink() {
			out.SinkOp = pop
		}
	}
	return out, nil
}

// Candidates returns the algorithmic decision space of an operator —
// the alternatives "from which the optimizer of the core level will
// have to choose" (paper Example 2).
func Candidates(o *Operator) []Algorithm {
	switch o.Kind() {
	case plan.KindGroupBy, plan.KindReduceByKey:
		return []Algorithm{HashGroupBy, SortGroupBy}
	case plan.KindJoin:
		return []Algorithm{HashJoin, SortMergeJoin}
	case plan.KindThetaJoin:
		if len(o.Logical.Conditions) > 0 {
			return []Algorithm{IEJoin, NestedLoop}
		}
		return []Algorithm{NestedLoop}
	case plan.KindDistinct:
		return []Algorithm{HashDistinct, SortDistinct}
	default:
		return []Algorithm{Default}
	}
}

// Consumers returns, for each operator ID, its consuming operators.
func (p *Plan) Consumers() map[int][]*Operator {
	out := make(map[int][]*Operator, len(p.Ops))
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			out[in.ID] = append(out[in.ID], op)
		}
	}
	return out
}

// Validate re-checks topological order, sink presence, and input
// wiring after rule rewrites.
func (p *Plan) Validate() error {
	if p.SinkOp == nil {
		return fmt.Errorf("physical: plan %q has no sink", p.Name)
	}
	seen := map[int]bool{}
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			if !seen[in.ID] {
				return fmt.Errorf("physical: plan %q: %s consumes %s before definition",
					p.Name, op.Name(), in.Name())
			}
		}
		if seen[op.ID] {
			return fmt.Errorf("physical: plan %q: duplicate op id %d", p.Name, op.ID)
		}
		seen[op.ID] = true
		if op.Body != nil {
			if err := op.Body.Validate(); err != nil {
				return err
			}
		}
	}
	if !seen[p.SinkOp.ID] {
		return fmt.Errorf("physical: plan %q: sink not in op list", p.Name)
	}
	return nil
}

// String renders the plan one operator per line.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "physical plan %q:\n", p.Name)
	for _, op := range p.Ops {
		sb.WriteString("  ")
		sb.WriteString(op.Name())
		if len(op.Inputs) > 0 {
			sb.WriteString(" <- ")
			for i, in := range op.Inputs {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(in.Name())
			}
		}
		sb.WriteByte('\n')
		if op.Body != nil {
			for _, line := range strings.Split(strings.TrimRight(op.Body.String(), "\n"), "\n") {
				sb.WriteString("    ")
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}

// --- rewrite helpers used by optimizer rules ---

// NewEnhancer creates an enhancer operator wrapping a synthesized
// logical payload and registers it in the plan (appended; callers must
// re-establish topological order with Normalize if they wire it
// mid-plan).
func (p *Plan) NewEnhancer(logical *plan.Operator, inputs ...*Operator) *Operator {
	if p.nextID == nil {
		p.nextID = new(atomic.Int64)
		for _, op := range p.Ops {
			if int64(op.ID) >= p.nextID.Load() {
				p.nextID.Store(int64(op.ID) + 1)
			}
		}
	}
	op := &Operator{ID: int(p.nextID.Add(1) - 1), Logical: logical, Enhancer: true, Inputs: inputs}
	p.Ops = append(p.Ops, op)
	return op
}

// ReplaceInput rewires every occurrence of old in op's inputs to new.
func (o *Operator) ReplaceInput(old, new *Operator) {
	for i, in := range o.Inputs {
		if in == old {
			o.Inputs[i] = new
		}
	}
}

// Remove deletes an operator with exactly one input from the plan,
// rewiring its consumers to its input. It returns an error if the
// operator has a different arity or is the sink.
func (p *Plan) Remove(op *Operator) error {
	if len(op.Inputs) != 1 {
		return fmt.Errorf("physical: Remove(%s): arity %d", op.Name(), len(op.Inputs))
	}
	if op == p.SinkOp {
		return fmt.Errorf("physical: Remove(%s): is the sink", op.Name())
	}
	in := op.Inputs[0]
	for _, other := range p.Ops {
		other.ReplaceInput(op, in)
	}
	for i, o := range p.Ops {
		if o == op {
			p.Ops = append(p.Ops[:i], p.Ops[i+1:]...)
			break
		}
	}
	return nil
}

// Normalize re-sorts Ops into a topological order (Kahn's algorithm);
// rules call it after structural edits. It fails on cycles.
func (p *Plan) Normalize() error {
	indeg := make(map[int]int, len(p.Ops))
	byID := make(map[int]*Operator, len(p.Ops))
	for _, op := range p.Ops {
		byID[op.ID] = op
		if _, ok := indeg[op.ID]; !ok {
			indeg[op.ID] = 0
		}
	}
	consumers := p.Consumers()
	for _, op := range p.Ops {
		indeg[op.ID] = len(op.Inputs)
	}
	var queue []*Operator
	for _, op := range p.Ops {
		if indeg[op.ID] == 0 {
			queue = append(queue, op)
		}
	}
	var sorted []*Operator
	for len(queue) > 0 {
		op := queue[0]
		queue = queue[1:]
		sorted = append(sorted, op)
		for _, c := range consumers[op.ID] {
			indeg[c.ID]--
			if indeg[c.ID] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(sorted) != len(p.Ops) {
		return fmt.Errorf("physical: plan %q has a cycle after rewrite", p.Name)
	}
	p.Ops = sorted
	return nil
}
