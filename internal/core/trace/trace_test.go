package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rheem/internal/core/engine"
)

// fakeClock advances a deterministic amount on every read.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(1000, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestSpanLifecycleAndSnapshot(t *testing.T) {
	tr := New()
	tr.SetClock(fakeClock(time.Millisecond))

	var kinds []EventKind
	tr.Subscribe(func(e Event) { kinds = append(kinds, e.Kind) })

	ready := tr.Now()
	sp := tr.Begin(&Span{Kind: KindAtom, AtomID: 7, Platform: "java"}, ready)
	if sp.ID != 1 {
		t.Errorf("span ID = %d", sp.ID)
	}
	if sp.QueueWait != time.Millisecond {
		t.Errorf("queue wait = %v, want 1ms from the fake clock", sp.QueueWait)
	}
	sp.Attempts = append(sp.Attempts, Attempt{Number: 1, Err: "transient"})
	tr.Retry(sp, 1, engine.Metrics{}, errors.New("transient"))
	sp.Attempts = append(sp.Attempts, Attempt{Number: 2})
	sp.Retries = 1
	tr.End(sp, engine.Metrics{Jobs: 1}, nil)
	tr.PlanDone(engine.Metrics{Jobs: 1})

	want := []EventKind{SpanStart, SpanRetry, SpanEnd, PlanDone}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}

	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("%d spans in snapshot", len(snap.Spans))
	}
	got := snap.Spans[0]
	if got.Wall <= 0 || got.EndedAt.Before(got.StartedAt) {
		t.Errorf("span timing: started %v ended %v wall %v", got.StartedAt, got.EndedAt, got.Wall)
	}
	if got.Failed() {
		t.Errorf("successful span reports failure %q", got.Err)
	}
	if len(got.Attempts) != 2 || got.Retries != 1 {
		t.Errorf("attempts = %v retries = %d", got.Attempts, got.Retries)
	}
}

func TestConsumersSerialized(t *testing.T) {
	tr := New()
	inCallback := false // races under -race if callbacks overlap
	events := 0
	tr.Subscribe(func(Event) {
		if inCallback {
			t.Error("consumer re-entered concurrently")
		}
		inCallback = true
		defer func() { inCallback = false }()
		events++
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Begin(&Span{Kind: KindAtom, AtomID: i}, time.Time{})
			tr.End(sp, engine.Metrics{}, nil)
		}(i)
	}
	wg.Wait()
	if events != 32 {
		t.Errorf("saw %d events, want 32", events)
	}
	if got := len(tr.Snapshot().Spans); got != 16 {
		t.Errorf("%d spans recorded", got)
	}
	// IDs must be unique.
	seen := map[int]bool{}
	for _, sp := range tr.Snapshot().Spans {
		if seen[sp.ID] {
			t.Errorf("duplicate span ID %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}

func TestTracePlatformsAndSpansOn(t *testing.T) {
	tr := New()
	for _, pl := range []engine.PlatformID{"a", "b", "a"} {
		sp := tr.Begin(&Span{Kind: KindAtom, Platform: pl}, time.Time{})
		tr.End(sp, engine.Metrics{}, nil)
	}
	snap := tr.Snapshot()
	pls := snap.Platforms()
	if len(pls) != 2 || pls[0] != "a" || pls[1] != "b" {
		t.Errorf("platforms = %v", pls)
	}
	if got := len(snap.SpansOn("a")); got != 2 {
		t.Errorf("%d spans on platform a", got)
	}
}

func TestFailedSpanAndAudit(t *testing.T) {
	tr := New()
	sp := tr.Begin(&Span{Kind: KindAtom, Platform: "chaos"}, time.Time{})
	tr.End(sp, engine.Metrics{}, errors.New("injected"))
	tr.Audit(CardAudit{OpID: 3, OpName: "filter", Estimated: 500, Actual: 0, ErrFactor: 500, Flagged: true})

	snap := tr.Snapshot()
	if !snap.Spans[0].Failed() || snap.Spans[0].Err != "injected" {
		t.Errorf("failed span = %+v", snap.Spans[0])
	}
	if len(snap.Audits) != 1 || !snap.Audits[0].Flagged {
		t.Errorf("audits = %+v", snap.Audits)
	}
}

func TestWriteJSONOneLinePerRecord(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		sp := tr.Begin(&Span{Kind: KindAtom, AtomID: i, Platform: "java", Name: "map"}, time.Time{})
		sp.Attempts = []Attempt{{Number: 1, Wall: time.Millisecond}}
		tr.End(sp, engine.Metrics{Jobs: 1, OutRecords: 10}, nil)
	}
	tr.Audit(CardAudit{OpID: 1, OpName: "map", Estimated: 10, Actual: 10, ErrFactor: 1})

	var buf bytes.Buffer
	if err := tr.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	spans, audits := 0, 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		switch obj["type"] {
		case "span":
			spans++
			if obj["platform"] != "java" {
				t.Errorf("span line missing platform: %v", obj)
			}
		case "audit":
			audits++
		default:
			t.Errorf("unknown line type %v", obj["type"])
		}
	}
	if spans != 3 || audits != 1 {
		t.Errorf("dump has %d span lines and %d audit lines", spans, audits)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tr := New()
	sp := tr.Begin(&Span{Kind: KindAtom}, time.Time{})
	tr.End(sp, engine.Metrics{}, nil)
	snap := tr.Snapshot()
	sp2 := tr.Begin(&Span{Kind: KindAtom}, time.Time{})
	tr.End(sp2, engine.Metrics{}, nil)
	if len(snap.Spans) != 1 {
		t.Errorf("earlier snapshot grew to %d spans", len(snap.Spans))
	}
}

// TestWriteJSONGoldenLines pins the exact JSONL shape (schema tag
// first, field order, timestamp format) so downstream tooling that
// parses -trace dumps breaks loudly here, not in the field. Bump
// JSONSchema and this golden when the shape changes.
func TestWriteJSONGoldenLines(t *testing.T) {
	tr := New()
	clock := time.Unix(1000, 0).UTC()
	tr.SetClock(func() time.Time { clock = clock.Add(time.Second); return clock })

	sp := tr.Begin(&Span{
		Kind: KindAtom, AtomID: 7, Name: "map", Platform: "java",
		Plan: "q1", Iteration: -1, Shard: -1,
	}, time.Time{})
	sp.InFormats = map[string]int{"collection": 2, "batch": 1}
	sp.KindEst = map[string]int64{"Map": 500}
	tr.End(sp, engine.Metrics{Jobs: 1, OutRecords: 5}, nil)
	shard := tr.Begin(&Span{
		Kind: KindShard, AtomID: 7, Name: "map", Platform: "java",
		Plan: "q1", Iteration: -1, Shard: 2, Shards: 4,
	}, time.Time{})
	tr.End(shard, engine.Metrics{Jobs: 1, OutRecords: 2}, nil)
	adm := tr.Begin(&Span{
		Kind: KindAdmission, Name: "admission",
		Plan: "acme/demo#j-1", Iteration: -1, Shard: -1,
		Job: "j-1", Tenant: "acme",
	}, time.Time{})
	tr.End(adm, engine.Metrics{}, nil)
	tr.Audit(CardAudit{
		OpID: 1, OpName: "map", Platform: "java",
		Estimated: 10, Actual: 40, ErrFactor: 4, Flagged: true,
		EstCost: 250 * time.Microsecond,
		OpKind:  "Map", RawEstimated: 10,
	})

	var buf bytes.Buffer
	if err := tr.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`{"schema":3,"type":"span","id":1,"kind":"atom","atom_id":7,"name":"map","platform":"java","plan":"q1","iteration":-1,"shard":-1,"started_at":"1970-01-01T00:16:41Z","ended_at":"1970-01-01T00:16:42Z","queue_wait_ns":0,"wall_ns":1000000000,"conv_ns":0,"conv_bytes":0,"conv_steps":0,"in_formats":{"batch":1,"collection":2},"est_cost_ns":0,"kind_est_ns":{"Map":500},"retries":0,"metrics":{"Wall":0,"Sim":0,"Jobs":1,"InRecords":0,"OutRecords":5,"ShuffledBytes":0,"MovedBytes":0,"Conversions":0,"Retries":0}}`,
		`{"schema":3,"type":"span","id":2,"kind":"shard","atom_id":7,"name":"map","platform":"java","plan":"q1","iteration":-1,"shard":2,"shards":4,"started_at":"1970-01-01T00:16:43Z","ended_at":"1970-01-01T00:16:44Z","queue_wait_ns":0,"wall_ns":1000000000,"conv_ns":0,"conv_bytes":0,"conv_steps":0,"est_cost_ns":0,"retries":0,"metrics":{"Wall":0,"Sim":0,"Jobs":1,"InRecords":0,"OutRecords":2,"ShuffledBytes":0,"MovedBytes":0,"Conversions":0,"Retries":0}}`,
		`{"schema":3,"type":"span","id":3,"kind":"admission","atom_id":0,"name":"admission","platform":"","plan":"acme/demo#j-1","iteration":-1,"shard":-1,"job":"j-1","tenant":"acme","started_at":"1970-01-01T00:16:45Z","ended_at":"1970-01-01T00:16:46Z","queue_wait_ns":0,"wall_ns":1000000000,"conv_ns":0,"conv_bytes":0,"conv_steps":0,"est_cost_ns":0,"retries":0,"metrics":{"Wall":0,"Sim":0,"Jobs":0,"InRecords":0,"OutRecords":0,"ShuffledBytes":0,"MovedBytes":0,"Conversions":0,"Retries":0}}`,
		`{"schema":3,"type":"audit","op_id":1,"op":"map","platform":"java","estimated":10,"actual":40,"err_factor":4,"flagged":true,"est_cost_ns":250000,"op_kind":"Map","raw_estimated":10}`,
	}
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("dump has %d lines, want %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %s\nwant %s", i+1, got[i], want[i])
		}
	}
}
