// Package trace is the cross-layer observability subsystem: it records
// what the executor actually did — per-atom spans with queue wait,
// per-attempt latency, conversion volume and the chosen platform — and
// what the optimizer believed would happen — an estimate-vs-actual
// audit of cardinalities and operator costs. The paper's optimizer
// chooses platforms from cost models and inter-platform movement costs
// (§4.2); progressive/adaptive optimization (RHEEMix) needs *measured*
// cardinalities and runtimes fed back. This package is that feedback
// channel, and the raw material for any future learned cost model.
//
// The Tracer is a synchronous span stream: the executor publishes span
// lifecycle events, and any number of Consumers observe them. Consumer
// callbacks are serialized by the tracer's lock, so a consumer needs no
// synchronization of its own — the executor's Monitor facility is
// implemented as exactly one such consumer (see executor.Run). Finished
// spans and audit records accumulate in the tracer and are exported as
// an immutable Trace snapshot, which can be dumped as flame-friendly
// JSON (one line per span).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"rheem/internal/core/engine"
)

// Span kinds: a platform-executed compute atom, a loop the executor
// unrolls itself, or one shard of a sharded atom execution.
const (
	KindAtom = "atom"
	KindLoop = "loop"
	// KindShard spans are children of a sharded KindAtom span: one per
	// shard per attempt, tagged with the shard index. Skew shows up as
	// spread between sibling shard spans.
	KindShard = "shard"
)

// Service-layer span kinds, emitted by the job service rather than the
// executor: the phases of a job's life around its engine run. They are
// correlated with the run's atom spans by run ID (the flight recorder's
// Annotate) and by the Job/Tenant span fields, so a job's path from
// POST /jobs to its result reads as one trace tree.
const (
	// KindAdmission covers submission to the admission ack.
	KindAdmission = "admission"
	// KindQueue covers the admission ack to dispatch — pending-queue
	// residency under the service's quotas and round-robin.
	KindQueue = "queue"
	// KindDispatch covers dispatch to the job's terminal state: the
	// engine run plus result digesting.
	KindDispatch = "dispatch"
)

// Attempt is one execution attempt of an atom. A span holds every
// attempt, so per-attempt latency and the error that triggered each
// retry stay visible after the run.
type Attempt struct {
	// Number is 1-based and strictly increasing within a span.
	Number int `json:"number"`
	// Wall is the attempt's measured host time.
	Wall time.Duration `json:"wall_ns"`
	// Err is the attempt's failure, empty on success.
	Err string `json:"error,omitempty"`
	// Fatal marks an error the executor will never retry.
	Fatal bool `json:"fatal,omitempty"`
}

// Span records one scheduled unit of work: a task atom execution
// (including all its retry attempts) or a whole unrolled loop. Times
// are stamped by the tracer's clock so tests can inject a fake one.
type Span struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"` // KindAtom or KindLoop
	// AtomID is the task atom's ID within its execution plan.
	AtomID int `json:"atom_id"`
	// Name is the atom's rendered operator chain.
	Name string `json:"name"`
	// Platform is the platform the atom was assigned to.
	Platform engine.PlatformID `json:"platform"`
	// Plan names the execution plan the span ran in — the top-level
	// plan, or a loop body's plan.
	Plan string `json:"plan"`
	// Iteration is the enclosing loop iteration for loop-body spans,
	// -1 at the top level.
	Iteration int `json:"iteration"`
	// Shard is the 0-based shard index on KindShard spans, -1 otherwise.
	Shard int `json:"shard"`
	// Shards is the intra-atom fan-out width: on a sharded KindAtom span
	// the number of shards the execution split into, and on a KindShard
	// span the parent's total shard count. 0 means unsharded.
	Shards int `json:"shards,omitempty"`
	// Job and Tenant tag service-layer spans (admission, queue,
	// dispatch) with the job they belong to — the correlation key that
	// joins a job's service-side phases to its engine run's atom spans.
	// Empty on executor-emitted spans.
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`

	StartedAt time.Time `json:"started_at"`
	EndedAt   time.Time `json:"ended_at"`
	// QueueWait is how long the atom sat ready (all inputs available)
	// before a worker slot picked it up — scheduler pressure.
	QueueWait time.Duration `json:"queue_wait_ns"`
	// Wall is EndedAt − StartedAt: input conversion plus every attempt.
	Wall time.Duration `json:"wall_ns"`

	// ConvTime/ConvBytes/ConvSteps account the cross-platform input
	// conversions performed to feed this atom (modelled movement time,
	// bytes moved, converter steps).
	ConvTime  time.Duration `json:"conv_ns"`
	ConvBytes int64         `json:"conv_bytes"`
	ConvSteps int           `json:"conv_steps"`

	// InFormats counts the atom's consumer operators by the channel
	// format the executor delivered their external inputs in
	// ("collection", "batch", "table", ...) — the runtime record of the
	// per-consumer row-vs-batch format choice.
	InFormats map[string]int `json:"in_formats,omitempty"`

	// EstCost is the optimizer's estimated cost total for the atom's
	// operators — compare against Metrics.Sim for estimator error.
	EstCost time.Duration `json:"est_cost_ns"`
	// KindEst splits the atom's RAW (uncalibrated) estimated cost by
	// operator kind, in nanoseconds. The cost calibrator folds measured
	// atom time against these — raw, so the learning target never moves
	// as calibration itself kicks in. Empty on spans the optimizer did
	// not cost (loops, service phases).
	KindEst map[string]int64 `json:"kind_est_ns,omitempty"`

	Attempts []Attempt `json:"attempts,omitempty"`
	// Retries counts attempts that were retried (len(Attempts)-1 for
	// an eventually successful span).
	Retries int `json:"retries"`
	// Metrics is the final attempt's platform metrics plus conversion
	// accounting, as charged to the run.
	Metrics engine.Metrics `json:"metrics"`
	// Err is the span's final failure, empty on success.
	Err string `json:"error,omitempty"`

	// Atom is the executed task atom, for consumers that want the full
	// structure. Not serialized.
	Atom *engine.TaskAtom `json:"-"`
}

// Failed reports whether the span ended in an error.
func (s *Span) Failed() bool { return s.Err != "" }

// CardAudit is one estimate-vs-actual record of the optimizer audit
// trail: for an operator whose output crossed an atom boundary, the
// estimated and observed output cardinality plus the operator's
// estimated cost. Flagged marks gross misestimates (beyond the
// executor's AuditFactor) — the ones that trigger re-optimization.
type CardAudit struct {
	OpID      int               `json:"op_id"`
	OpName    string            `json:"op"`
	Platform  engine.PlatformID `json:"platform"`
	Estimated int64             `json:"estimated"`
	Actual    int64             `json:"actual"`
	// ErrFactor is max(est,act)/min(est,act) with zero clamped to 1 —
	// always ≥ 1; 1 means the estimate was exact.
	ErrFactor float64       `json:"err_factor"`
	Flagged   bool          `json:"flagged"`
	EstCost   time.Duration `json:"est_cost_ns"`
	// OpKind is the operator's logical kind — the cardinality
	// calibrator's cell key.
	OpKind string `json:"op_kind,omitempty"`
	// RawEstimated is the uncalibrated rule-derived estimate (equal to
	// Estimated when calibration is off): what the calibrator learns
	// against, so its own corrections never feed back into the target.
	RawEstimated int64 `json:"raw_estimated,omitempty"`
}

// EventKind classifies span-stream events.
type EventKind int

// Span-stream event kinds, in the order a healthy span emits them.
const (
	// SpanStart opens a span: the atom left the ready queue and is
	// about to convert inputs and execute.
	SpanStart EventKind = iota
	// SpanRetry reports a failed attempt that will be re-executed.
	SpanRetry
	// SpanEnd closes a span, successfully or with Err set.
	SpanEnd
	// LoopIteration reports one completed iteration of a loop span.
	LoopIteration
	// Replan reports adaptive re-optimization replacing the remaining
	// plan.
	Replan
	// Failover reports a cross-platform failover re-plan.
	Failover
	// PlanDone closes the run with its aggregate metrics.
	PlanDone
	// RunStart announces a (possibly replacement) execution plan and
	// its scheduled atom count — the denominator live progress
	// reporting divides by. Emitted once at run start and again after
	// every failover or re-optimization swaps the plan.
	RunStart
	// AuditRecords delivers a batch of estimate-vs-actual audit
	// records as they are produced, so live consumers (the metrics
	// collector) see them without waiting for the Trace snapshot.
	AuditRecords
)

// Event is one notification on the span stream.
type Event struct {
	Kind EventKind
	// Span is the subject span (nil for Replan, Failover and PlanDone).
	Span *Span
	// Atom identifies the failed execution on Failover events, where
	// the triggering span has already ended.
	Atom *engine.TaskAtom
	// Attempt is the failing attempt number on SpanRetry events.
	Attempt int
	// Iteration is the completed iteration on LoopIteration events.
	Iteration int
	// Metrics carries attempt metrics (SpanRetry, SpanEnd) or the run
	// aggregate (PlanDone).
	Metrics engine.Metrics
	Err     error
	// Excluded lists quarantined platforms on Failover events.
	Excluded []engine.PlatformID
	// Plan and TotalAtoms describe the announced plan on RunStart
	// events.
	Plan       string
	TotalAtoms int
	// Audits carries the batch on AuditRecords events.
	Audits []CardAudit
}

// Consumer observes span-stream events. Callbacks are serialized by
// the tracer and must not block for long or re-enter the tracer; a
// consumer should read event fields during the callback rather than
// retain the Span pointer, which its owner keeps mutating until
// SpanEnd.
type Consumer func(Event)

// Tracer collects a run's spans and audit records and fans events out
// to consumers. All methods are safe for concurrent use — the executor
// publishes from many scheduler goroutines at once.
type Tracer struct {
	mu        sync.Mutex
	now       func() time.Time
	consumers []Consumer
	spans     []*Span
	audits    []CardAudit
	nextID    int
}

// New returns a tracer with the given initial consumers.
func New(consumers ...Consumer) *Tracer {
	return &Tracer{now: time.Now, consumers: consumers}
}

// Subscribe adds a consumer to the span stream.
func (t *Tracer) Subscribe(c Consumer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.consumers = append(t.consumers, c)
}

// SetClock injects a clock (tests only).
func (t *Tracer) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// Now reads the tracer's clock, so callers stamping their own
// timestamps (e.g. scheduler ready times) stay on the injected clock.
func (t *Tracer) Now() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

func (t *Tracer) emitLocked(e Event) {
	for _, c := range t.consumers {
		c(e)
	}
}

// Start announces the execution plan about to be scheduled and its
// atom count. The executor emits it at run start and again whenever a
// failover or adaptive re-optimization installs a replacement plan.
func (t *Tracer) Start(plan string, totalAtoms int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: RunStart, Plan: plan, TotalAtoms: totalAtoms})
}

// Begin opens a span: assigns its ID, stamps StartedAt, derives
// QueueWait from readyAt (when non-zero) and emits SpanStart. The
// caller owns the span until End; only the owning goroutine may
// mutate it.
func (t *Tracer) Begin(sp *Span, readyAt time.Time) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	sp.ID = t.nextID
	sp.StartedAt = t.now()
	if !readyAt.IsZero() {
		if w := sp.StartedAt.Sub(readyAt); w > 0 {
			sp.QueueWait = w
		}
	}
	t.emitLocked(Event{Kind: SpanStart, Span: sp})
	return sp
}

// Retry records a failed attempt that will be re-executed and emits
// SpanRetry. The attempt itself must already be appended to the span
// by its owner.
func (t *Tracer) Retry(sp *Span, attempt int, m engine.Metrics, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: SpanRetry, Span: sp, Attempt: attempt, Metrics: m, Err: err})
}

// End closes a span: stamps EndedAt/Wall, records the final metrics
// and error, stores the span and emits SpanEnd. After End the span is
// immutable.
func (t *Tracer) End(sp *Span, m engine.Metrics, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp.EndedAt = t.now()
	sp.Wall = sp.EndedAt.Sub(sp.StartedAt)
	sp.Metrics = m
	if err != nil {
		sp.Err = err.Error()
	}
	t.spans = append(t.spans, sp)
	t.emitLocked(Event{Kind: SpanEnd, Span: sp, Metrics: m, Err: err})
}

// Loop emits a LoopIteration event for an open loop span.
func (t *Tracer) Loop(sp *Span, iteration int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: LoopIteration, Span: sp, Iteration: iteration})
}

// Replan emits a Replan event (adaptive re-optimization).
func (t *Tracer) Replan() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: Replan})
}

// Failover emits a Failover event for the atom whose failure triggered
// the cross-platform re-plan.
func (t *Tracer) Failover(atom *engine.TaskAtom, err error, excluded []engine.PlatformID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: Failover, Atom: atom, Err: err, Excluded: excluded})
}

// PlanDone emits the run-completion event with the aggregate metrics.
func (t *Tracer) PlanDone(m engine.Metrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: PlanDone, Metrics: m})
}

// Audit appends estimate-vs-actual records to the audit trail and
// emits them to consumers as one AuditRecords event.
func (t *Tracer) Audit(records ...CardAudit) {
	if len(records) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.audits = append(t.audits, records...)
	t.emitLocked(Event{Kind: AuditRecords, Audits: records})
}

// Snapshot exports the finished spans and audit records collected so
// far. The returned Trace shares span pointers but every shared span
// has ended, so it is safe to read (and serialize) concurrently.
func (t *Tracer) Snapshot() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &Trace{
		Spans:  make([]*Span, len(t.spans)),
		Audits: make([]CardAudit, len(t.audits)),
	}
	copy(tr.Spans, t.spans)
	copy(tr.Audits, t.audits)
	return tr
}

// Trace is an immutable export of a run's spans and audit trail.
type Trace struct {
	Spans  []*Span     `json:"spans"`
	Audits []CardAudit `json:"audits"`
}

// SpansOn returns the spans executed on the given platform.
func (tr *Trace) SpansOn(id engine.PlatformID) []*Span {
	var out []*Span
	for _, sp := range tr.Spans {
		if sp.Platform == id {
			out = append(out, sp)
		}
	}
	return out
}

// Platforms lists the distinct platforms the trace's spans ran on, in
// first-seen order — a failover run shows both the dead platform and
// its survivors.
func (tr *Trace) Platforms() []engine.PlatformID {
	seen := map[engine.PlatformID]bool{}
	var out []engine.PlatformID
	for _, sp := range tr.Spans {
		if !seen[sp.Platform] {
			seen[sp.Platform] = true
			out = append(out, sp.Platform)
		}
	}
	return out
}

// JSONSchema is the version stamped into every WriteJSON line, so
// downstream tooling can detect format changes. Bump it whenever a
// line's shape changes incompatibly.
//
// v2 added the service-layer span kinds (admission/queue/dispatch),
// the job/tenant correlation fields, and in_formats (the executor's
// per-consumer channel format choice).
//
// v3 added the cost-calibration feedback fields: kind_est_ns on spans
// (raw per-kind estimated cost split) and op_kind / raw_estimated on
// audit records.
const JSONSchema = 3

// WriteJSON dumps the trace as JSON lines — one object per span, then
// one per audit record, each tagged with "schema" and "type" fields.
// The format is flame-friendly: every line is self-contained, with
// start/end stamps and durations in nanoseconds.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	type spanLine struct {
		Schema int    `json:"schema"`
		Type   string `json:"type"`
		*Span
	}
	for _, sp := range tr.Spans {
		if err := enc.Encode(spanLine{Schema: JSONSchema, Type: "span", Span: sp}); err != nil {
			return fmt.Errorf("trace: encoding span %d: %w", sp.ID, err)
		}
	}
	type auditLine struct {
		Schema int    `json:"schema"`
		Type   string `json:"type"`
		CardAudit
	}
	for _, a := range tr.Audits {
		if err := enc.Encode(auditLine{Schema: JSONSchema, Type: "audit", CardAudit: a}); err != nil {
			return fmt.Errorf("trace: encoding audit of op %d: %w", a.OpID, err)
		}
	}
	return nil
}
