// Package batch implements RHEEM's columnar in-memory format: typed
// slices per column with a validity bitmap, the representation Shark
// showed is the decisive lever against the row-at-a-time tax at the
// abstraction layer. A Batch is exchanged between platforms through
// the channel conversion graph (channel.Batch); vectorized execution
// operators loop over its columns without boxing values, and shard
// fan-out takes zero-copy column-slice views.
//
// The format is lossless over the full data.Record model. Columns
// whose values are uniformly one scalar kind become typed slices
// (int64 / float64 / string / bool) with nulls tracked in an
// algo.Bitset validity bitmap; columns mixing kinds or holding vectors
// fall back to a generic []data.Value column; a ragged record set
// (records of differing arity) is carried as rows behind the same
// Batch interface. ToRecords therefore always reproduces the source
// records exactly — byte-identical under the canonical binary
// encoding — no matter the shape of the input.
package batch

import (
	"fmt"

	"rheem/internal/core/algo"
	"rheem/internal/data"
)

// ColKind enumerates the physical representations a column can take.
type ColKind uint8

// Column representations. Typed columns store one Go scalar per row;
// ColAny is the lossless fallback for mixed-kind and vector columns.
const (
	ColInt64 ColKind = iota
	ColFloat64
	ColString
	ColBool
	ColAny
)

// String returns the column kind's name.
func (k ColKind) String() string {
	switch k {
	case ColInt64:
		return "int64"
	case ColFloat64:
		return "float64"
	case ColString:
		return "string"
	case ColBool:
		return "bool"
	case ColAny:
		return "any"
	default:
		return fmt.Sprintf("ColKind(%d)", uint8(k))
	}
}

// Column is one column of a batch: exactly one of the typed slices is
// populated according to Kind. Valid marks non-null rows for typed
// columns; a nil Valid means every row is valid. Because zero-copy
// views sub-slice the typed storage but share the validity bitmap,
// row i of a view maps to bit view.Off()+i of Valid. ColAny columns
// carry nulls as data.Null values and never use Valid.
type Column struct {
	Kind     ColKind
	Int64s   []int64
	Float64s []float64
	Strings  []string
	Bools    []bool
	Any      []data.Value
	Valid    *algo.Bitset
}

// length returns the populated slice's length.
func (c *Column) length() int {
	switch c.Kind {
	case ColInt64:
		return len(c.Int64s)
	case ColFloat64:
		return len(c.Float64s)
	case ColString:
		return len(c.Strings)
	case ColBool:
		return len(c.Bools)
	default:
		return len(c.Any)
	}
}

// slice returns the zero-copy [lo, hi) view of the column. The validity
// bitmap is shared, not re-based; the caller tracks the offset.
func (c Column) slice(lo, hi int) Column {
	switch c.Kind {
	case ColInt64:
		c.Int64s = c.Int64s[lo:hi]
	case ColFloat64:
		c.Float64s = c.Float64s[lo:hi]
	case ColString:
		c.Strings = c.Strings[lo:hi]
	case ColBool:
		c.Bools = c.Bools[lo:hi]
	default:
		c.Any = c.Any[lo:hi]
	}
	return c
}

// ValidAt reports whether row i of a view with validity offset off is
// non-null. ColAny columns track nulls in the values themselves.
func (c *Column) ValidAt(off, i int) bool {
	if c.Kind == ColAny {
		return !c.Any[i].IsNull()
	}
	return c.Valid == nil || c.Valid.Get(off+i)
}

// Value materialises row i (with validity offset off) as a data.Value.
func (c *Column) Value(off, i int) data.Value {
	if c.Kind == ColAny {
		return c.Any[i]
	}
	if c.Valid != nil && !c.Valid.Get(off+i) {
		return data.Null()
	}
	switch c.Kind {
	case ColInt64:
		return data.Int(c.Int64s[i])
	case ColFloat64:
		return data.Float(c.Float64s[i])
	case ColString:
		return data.Str(c.Strings[i])
	default:
		return data.Bool(c.Bools[i])
	}
}

// Batch is a columnar view over n records. The zero value is an empty
// batch. Views produced by Slice share column storage and validity
// bitmaps with their parent.
type Batch struct {
	cols []Column
	n    int
	off  int // validity-bitmap offset of row 0 in shared Valid bitsets

	// rows is the lossless fallback for ragged record sets, which have
	// no rectangular column decomposition. When set, cols is empty.
	rows []data.Record
}

// FromRecords builds a batch from records. The records themselves are
// never mutated; string and vector payloads are shared, not copied.
// Rectangular scalar inputs become typed columns; anything else takes
// a lossless fallback representation (see package comment), so the
// conversion is total.
func FromRecords(recs []data.Record) *Batch {
	n := len(recs)
	if n == 0 {
		return &Batch{}
	}
	w := recs[0].Len()
	for i := 1; i < n; i++ {
		if recs[i].Len() != w {
			return &Batch{rows: recs, n: n}
		}
	}
	cols := make([]Column, w)
	for c := 0; c < w; c++ {
		cols[c] = buildColumn(recs, c)
	}
	return &Batch{cols: cols, n: n}
}

// buildColumn decides a column's representation and fills it in a
// single speculative pass: the first non-null value picks a typed
// representation; a later value of another kind abandons the attempt
// for the generic fallback (mixed columns are ColAny anyway, so only
// they pay the restart). The conversion is on the columnar hot path —
// every Collection/Table → Batch edge runs it over the whole input —
// which is why it avoids a separate kind-scan pass.
func buildColumn(recs []data.Record, c int) Column {
	for i := range recs {
		switch recs[i].Field(c).Kind() {
		case data.KindNull:
			continue
		case data.KindInt:
			return fillInt64(recs, c, i)
		case data.KindFloat:
			return fillFloat64(recs, c, i)
		case data.KindString:
			return fillString(recs, c, i)
		case data.KindBool:
			return fillBool(recs, c, i)
		default: // vectors take the generic representation
			return genericColumn(recs, c)
		}
	}
	return genericColumn(recs, c) // all null
}

// genericColumn is the lossless ColAny fallback.
func genericColumn(recs []data.Record, c int) Column {
	any := make([]data.Value, len(recs))
	for i := range recs {
		any[i] = recs[i].Field(c)
	}
	return Column{Kind: ColAny, Any: any}
}

// markNull lazily materialises the validity bitmap on the first null:
// rows [start, i) of the speculative fill were all valid, rows before
// start all null.
func markNull(valid *algo.Bitset, n, start, i int) *algo.Bitset {
	if valid == nil {
		valid = algo.NewBitset(n)
		for j := start; j < i; j++ {
			valid.Set(j)
		}
	}
	return valid
}

// The typed fill loops. All four are the same shape: store the scalar,
// track validity only once a null has appeared, bail to the generic
// representation on a kind mismatch.

func fillInt64(recs []data.Record, c, start int) Column {
	n := len(recs)
	vals := make([]int64, n)
	var valid *algo.Bitset
	if start > 0 {
		valid = algo.NewBitset(n) // leading nulls
	}
	for i := start; i < n; i++ {
		v := recs[i].Field(c)
		switch v.Kind() {
		case data.KindInt:
			vals[i] = v.Int()
			if valid != nil {
				valid.Set(i)
			}
		case data.KindNull:
			valid = markNull(valid, n, start, i)
		default:
			return genericColumn(recs, c)
		}
	}
	return Column{Kind: ColInt64, Int64s: vals, Valid: valid}
}

func fillFloat64(recs []data.Record, c, start int) Column {
	n := len(recs)
	vals := make([]float64, n)
	var valid *algo.Bitset
	if start > 0 {
		valid = algo.NewBitset(n)
	}
	for i := start; i < n; i++ {
		v := recs[i].Field(c)
		switch v.Kind() {
		case data.KindFloat:
			vals[i] = v.Float()
			if valid != nil {
				valid.Set(i)
			}
		case data.KindNull:
			valid = markNull(valid, n, start, i)
		default:
			return genericColumn(recs, c)
		}
	}
	return Column{Kind: ColFloat64, Float64s: vals, Valid: valid}
}

func fillString(recs []data.Record, c, start int) Column {
	n := len(recs)
	vals := make([]string, n)
	var valid *algo.Bitset
	if start > 0 {
		valid = algo.NewBitset(n)
	}
	for i := start; i < n; i++ {
		v := recs[i].Field(c)
		switch v.Kind() {
		case data.KindString:
			vals[i] = v.Str()
			if valid != nil {
				valid.Set(i)
			}
		case data.KindNull:
			valid = markNull(valid, n, start, i)
		default:
			return genericColumn(recs, c)
		}
	}
	return Column{Kind: ColString, Strings: vals, Valid: valid}
}

func fillBool(recs []data.Record, c, start int) Column {
	n := len(recs)
	vals := make([]bool, n)
	var valid *algo.Bitset
	if start > 0 {
		valid = algo.NewBitset(n)
	}
	for i := start; i < n; i++ {
		v := recs[i].Field(c)
		switch v.Kind() {
		case data.KindBool:
			vals[i] = v.Bool()
			if valid != nil {
				valid.Set(i)
			}
		case data.KindNull:
			valid = markNull(valid, n, start, i)
		default:
			return genericColumn(recs, c)
		}
	}
	return Column{Kind: ColBool, Bools: vals, Valid: valid}
}

// New assembles a batch of n rows from freshly built columns (validity
// offset zero). Every column's storage must hold exactly n rows.
func New(n int, cols []Column) (*Batch, error) {
	for i := range cols {
		if got := cols[i].length(); got != n {
			return nil, fmt.Errorf("batch: column %d holds %d rows, batch wants %d", i, got, n)
		}
	}
	return &Batch{cols: cols, n: n}, nil
}

// FromRows wraps records in a fallback row-backed batch without
// attempting a columnar decomposition.
func FromRows(recs []data.Record) *Batch {
	return &Batch{rows: recs, n: len(recs)}
}

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// NumCols returns the number of columns (0 for row-backed batches).
func (b *Batch) NumCols() int { return len(b.cols) }

// Col returns column c. The returned struct shares storage with the
// batch; callers must not mutate the slices.
func (b *Batch) Col(c int) *Column { return &b.cols[c] }

// Off returns the validity-bitmap offset of row 0 — pass it to
// Column.ValidAt / Column.Value when reading this batch's columns.
func (b *Batch) Off() int { return b.off }

// Columnar reports whether the batch has a column decomposition.
// Row-backed fallback batches (ragged inputs) return false; note the
// empty batch is columnar with zero columns.
func (b *Batch) Columnar() bool { return b.rows == nil }

// Rows returns the fallback row representation, or nil for columnar
// batches. Callers must not mutate the returned slice.
func (b *Batch) Rows() []data.Record { return b.rows }

// Slice returns the zero-copy [lo, hi) row view. Bounds are clamped to
// the batch like slice expressions clamp to capacity.
func (b *Batch) Slice(lo, hi int) *Batch {
	if lo < 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo > hi {
		lo = hi
	}
	if b.rows != nil {
		return &Batch{rows: b.rows[lo:hi], n: hi - lo}
	}
	cols := make([]Column, len(b.cols))
	for c := range b.cols {
		cols[c] = b.cols[c].slice(lo, hi)
	}
	return &Batch{cols: cols, n: hi - lo, off: b.off + lo}
}

// Project returns the zero-copy batch keeping the selected columns in
// order. It panics on a row-backed batch or an out-of-range index,
// like Record.Project panics on a bad field index.
func (b *Batch) Project(idx ...int) *Batch {
	if b.rows != nil {
		panic("batch: Project on a row-backed batch")
	}
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = b.cols[j]
	}
	return &Batch{cols: cols, n: b.n, off: b.off}
}

// ToRecords materialises the batch back into records. For columnar
// batches the result is freshly allocated; for row-backed batches the
// underlying rows are returned directly (records are immutable, so
// sharing is safe — treat the result as read-only).
func (b *Batch) ToRecords() []data.Record {
	if b.rows != nil {
		return b.rows
	}
	w := len(b.cols)
	out := make([]data.Record, b.n)
	if w == 0 {
		for i := range out {
			out[i] = data.NewRecord()
		}
		return out
	}
	// One backing array for all field slices keeps the materialisation
	// a single allocation instead of one per record.
	backing := make([]data.Value, b.n*w)
	for i := 0; i < b.n; i++ {
		row := backing[i*w : (i+1)*w : (i+1)*w]
		for c := range b.cols {
			row[c] = b.cols[c].Value(b.off, i)
		}
		out[i] = data.NewRecord(row...)
	}
	return out
}

// Bytes estimates the in-memory footprint using the same accounting as
// data.Record.Bytes, so channel metadata (and therefore conversion
// pricing and the virtual clock) is identical whether a dataset flows
// as rows or as a batch.
func (b *Batch) Bytes() int64 {
	if b.rows != nil {
		return data.TotalBytes(b.rows)
	}
	total := int64(b.n) * 16 // per-record base
	for c := range b.cols {
		col := &b.cols[c]
		switch col.Kind {
		case ColString:
			total += int64(b.n) * 16
			for i, s := range col.Strings {
				if col.ValidAt(b.off, i) {
					total += int64(len(s))
				}
			}
		case ColAny:
			for i := range col.Any {
				v := col.Any[i]
				switch v.Kind() {
				case data.KindString:
					total += 16 + int64(len(v.Str()))
				case data.KindVector:
					total += 24 + 8*int64(len(v.Vec()))
				default:
					total += 16
				}
			}
		default:
			total += int64(b.n) * 16
		}
	}
	return total
}
