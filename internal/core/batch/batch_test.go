package batch

import (
	"bytes"
	"math"
	"testing"

	"rheem/internal/data"
)

// encode renders records under the canonical binary encoding — the
// byte-identity yardstick every round-trip assertion uses.
func encode(t *testing.T, recs []data.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := data.WriteBinary(&buf, recs); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

// fixtures returns named record sets covering the format's whole
// decision space: typed columns, nulls, all-null columns, mixed kinds,
// vectors, empty records, ragged sets, and the empty set.
func fixtures() map[string][]data.Record {
	return map[string][]data.Record{
		"empty": {},
		"typed": {
			data.NewRecord(data.Int(1), data.Float(1.5), data.Str("a"), data.Bool(true)),
			data.NewRecord(data.Int(2), data.Float(-2.5), data.Str(""), data.Bool(false)),
			data.NewRecord(data.Int(-1<<62), data.Float(math.Inf(1)), data.Str("héllo\x00"), data.Bool(true)),
		},
		"nulls": {
			data.NewRecord(data.Int(1), data.Str("x")),
			data.NewRecord(data.Null(), data.Str("y")),
			data.NewRecord(data.Int(3), data.Null()),
		},
		"all-null-column": {
			data.NewRecord(data.Null(), data.Int(1)),
			data.NewRecord(data.Null(), data.Int(2)),
		},
		"mixed-kinds": {
			data.NewRecord(data.Int(1)),
			data.NewRecord(data.Str("two")),
			data.NewRecord(data.Float(3)),
		},
		"vectors": {
			data.NewRecord(data.Vec([]float64{1, 2}), data.Int(1)),
			data.NewRecord(data.Vec(nil), data.Int(2)),
		},
		"nan-floats": {
			data.NewRecord(data.Float(math.NaN())),
			data.NewRecord(data.Float(-0.0)),
			data.NewRecord(data.Float(0.0)),
		},
		"zero-width": {
			data.NewRecord(),
			data.NewRecord(),
		},
		"ragged": {
			data.NewRecord(data.Int(1)),
			data.NewRecord(data.Int(2), data.Str("extra")),
		},
		"single": {
			data.NewRecord(data.Str("only")),
		},
	}
}

func TestRoundTripByteIdentity(t *testing.T) {
	for name, recs := range fixtures() {
		t.Run(name, func(t *testing.T) {
			b := FromRecords(recs)
			if b.Len() != len(recs) {
				t.Fatalf("Len = %d, want %d", b.Len(), len(recs))
			}
			got := b.ToRecords()
			if want, have := encode(t, recs), encode(t, got); !bytes.Equal(want, have) {
				t.Fatalf("round trip not byte-identical:\n want %x\n have %x", want, have)
			}
		})
	}
}

func TestColumnRepresentations(t *testing.T) {
	fx := fixtures()
	b := FromRecords(fx["typed"])
	if !b.Columnar() {
		t.Fatal("rectangular scalar input should be columnar")
	}
	wantKinds := []ColKind{ColInt64, ColFloat64, ColString, ColBool}
	for c, want := range wantKinds {
		if got := b.Col(c).Kind; got != want {
			t.Errorf("column %d kind = %s, want %s", c, got, want)
		}
		if b.Col(c).Valid != nil {
			t.Errorf("column %d has a validity bitmap despite no nulls", c)
		}
	}

	nb := FromRecords(fx["nulls"])
	if nb.Col(0).Valid == nil {
		t.Error("nullable int column should carry a validity bitmap")
	}
	if nb.Col(0).ValidAt(nb.Off(), 1) {
		t.Error("row 1 of column 0 should be null")
	}
	if !nb.Col(0).ValidAt(nb.Off(), 0) {
		t.Error("row 0 of column 0 should be valid")
	}

	if k := FromRecords(fx["all-null-column"]).Col(0).Kind; k != ColAny {
		t.Errorf("all-null column kind = %s, want %s", k, ColAny)
	}
	if k := FromRecords(fx["mixed-kinds"]).Col(0).Kind; k != ColAny {
		t.Errorf("mixed-kind column kind = %s, want %s", k, ColAny)
	}
	if k := FromRecords(fx["vectors"]).Col(0).Kind; k != ColAny {
		t.Errorf("vector column kind = %s, want %s", k, ColAny)
	}
	if FromRecords(fx["ragged"]).Columnar() {
		t.Error("ragged input should take the row-backed fallback")
	}
}

// TestSliceViews checks that Slice is a zero-copy view with correct
// validity mapping through the shared bitmap, and that re-slicing a
// slice composes.
func TestSliceViews(t *testing.T) {
	recs := []data.Record{
		data.NewRecord(data.Int(0)),
		data.NewRecord(data.Null()),
		data.NewRecord(data.Int(2)),
		data.NewRecord(data.Int(3)),
		data.NewRecord(data.Null()),
	}
	b := FromRecords(recs)
	view := b.Slice(1, 4)
	if view.Len() != 3 {
		t.Fatalf("view length = %d, want 3", view.Len())
	}
	// Zero-copy: the view's typed storage aliases the parent's.
	if &view.Col(0).Int64s[0] != &b.Col(0).Int64s[1] {
		t.Error("Slice copied the typed storage")
	}
	if want, have := encode(t, recs[1:4]), encode(t, view.ToRecords()); !bytes.Equal(want, have) {
		t.Fatalf("view rows diverge from record slice:\n want %x\n have %x", want, have)
	}
	sub := view.Slice(1, 3) // rows 2..3 of the original
	if want, have := encode(t, recs[2:4]), encode(t, sub.ToRecords()); !bytes.Equal(want, have) {
		t.Fatalf("re-slice diverges:\n want %x\n have %x", want, have)
	}
	// Clamping matches slice-expression clamping.
	if got := b.Slice(-3, 99).Len(); got != len(recs) {
		t.Errorf("clamped slice length = %d, want %d", got, len(recs))
	}
	if got := b.Slice(4, 2).Len(); got != 0 {
		t.Errorf("inverted bounds length = %d, want 0", got)
	}
}

func TestProject(t *testing.T) {
	recs := []data.Record{
		data.NewRecord(data.Int(1), data.Str("a"), data.Bool(true)),
		data.NewRecord(data.Int(2), data.Str("b"), data.Bool(false)),
	}
	b := FromRecords(recs)
	p := b.Project(2, 0)
	want := []data.Record{
		data.NewRecord(data.Bool(true), data.Int(1)),
		data.NewRecord(data.Bool(false), data.Int(2)),
	}
	if w, h := encode(t, want), encode(t, p.ToRecords()); !bytes.Equal(w, h) {
		t.Fatalf("projection mismatch:\n want %x\n have %x", w, h)
	}
	// Zero-copy: projected column aliases the source storage.
	if &p.Col(1).Int64s[0] != &b.Col(0).Int64s[0] {
		t.Error("Project copied the typed storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("Project on a row-backed batch should panic")
		}
	}()
	FromRows(recs).Project(0)
}

func TestNewValidatesColumnLengths(t *testing.T) {
	_, err := New(3, []Column{{Kind: ColInt64, Int64s: make([]int64, 2)}})
	if err == nil {
		t.Fatal("New accepted a short column")
	}
}

func TestBytesMatchesRecordAccounting(t *testing.T) {
	for name, recs := range fixtures() {
		t.Run(name, func(t *testing.T) {
			b := FromRecords(recs)
			if got, want := b.Bytes(), data.TotalBytes(recs); got != want {
				t.Errorf("Bytes = %d, want %d (data.TotalBytes)", got, want)
			}
		})
	}
}

// FuzzBatchRoundTrip drives codec-decoded record sets through the
// columnar conversion: Collection → Batch → Collection must be
// byte-identical under the canonical encoding for every input the
// codec accepts, and slicing must agree with record subslicing.
func FuzzBatchRoundTrip(f *testing.F) {
	for _, recs := range fixtures() {
		var buf bytes.Buffer
		if _, err := data.WriteBinary(&buf, recs); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), 0, len(recs))
	}
	f.Fuzz(func(t *testing.T, raw []byte, lo, hi int) {
		recs, err := data.ReadBinary(bytes.NewReader(raw))
		if err != nil {
			return
		}
		b := FromRecords(recs)
		if b.Len() != len(recs) {
			t.Fatalf("Len = %d, want %d", b.Len(), len(recs))
		}
		if want, have := encode(t, recs), encode(t, b.ToRecords()); !bytes.Equal(want, have) {
			t.Fatalf("round trip not byte-identical:\n want %x\n have %x", want, have)
		}
		if got, want := b.Bytes(), data.TotalBytes(recs); got != want {
			t.Fatalf("Bytes = %d, want %d", got, want)
		}
		// Clamp the fuzzed range the way Slice clamps, then compare the
		// view against the equivalent record subslice.
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if chi < 0 {
			chi = 0
		}
		if chi > len(recs) {
			chi = len(recs)
		}
		if clo > chi {
			clo = chi
		}
		view := b.Slice(lo, hi)
		if want, have := encode(t, recs[clo:chi]), encode(t, view.ToRecords()); !bytes.Equal(want, have) {
			t.Fatalf("slice [%d:%d) not byte-identical to record subslice", lo, hi)
		}
	})
}
