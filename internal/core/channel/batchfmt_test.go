package channel

import (
	"bytes"
	"testing"

	"rheem/internal/data"
)

// TestBatchChannelRoundTripByteIdentity drives Collection → Batch →
// Collection through the registered hub converters and demands byte
// identity under the canonical encoding — order preserved, nulls and
// validity intact, empty columns and zero-width records included —
// along with truthful Records/Bytes channel metadata at every hop.
func TestBatchChannelRoundTripByteIdentity(t *testing.T) {
	cases := map[string][]data.Record{
		"empty": {},
		"typed": {
			data.NewRecord(data.Int(1), data.Str("a"), data.Bool(true)),
			data.NewRecord(data.Int(2), data.Str(""), data.Bool(false)),
		},
		"nulls-and-validity": {
			data.NewRecord(data.Null(), data.Float(1.5)),
			data.NewRecord(data.Int(7), data.Null()),
			data.NewRecord(data.Null(), data.Null()),
		},
		"all-null-column": {
			data.NewRecord(data.Null(), data.Str("x")),
			data.NewRecord(data.Null(), data.Str("y")),
		},
		"zero-width-records": {
			data.NewRecord(),
			data.NewRecord(),
		},
	}
	reg := NewRegistry()
	RegisterBatchConverters(reg)
	encode := func(recs []data.Record) []byte {
		var buf bytes.Buffer
		if _, err := data.WriteBinary(&buf, recs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for name, recs := range cases {
		t.Run(name, func(t *testing.T) {
			src := NewCollection(recs)
			bch, _, _, err := reg.Convert(src, Batch)
			if err != nil {
				t.Fatal(err)
			}
			if bch.Records != int64(len(recs)) {
				t.Errorf("batch channel Records = %d, want %d", bch.Records, len(recs))
			}
			if bch.Bytes != src.Bytes {
				t.Errorf("batch channel Bytes = %d, want %d", bch.Bytes, src.Bytes)
			}
			back, _, _, err := reg.Convert(bch, Collection)
			if err != nil {
				t.Fatal(err)
			}
			out, err := back.AsCollection()
			if err != nil {
				t.Fatal(err)
			}
			if want, have := encode(recs), encode(out); !bytes.Equal(want, have) {
				t.Errorf("round trip not byte-identical:\n want %x\n have %x", want, have)
			}
		})
	}
	// Unwrap type errors must name the problem, not panic.
	if _, err := NewCollection(nil).AsBatch(); err == nil {
		t.Error("AsBatch on a collection channel should error")
	}
	if _, err := (&Channel{Format: Batch, Payload: 42}).AsBatch(); err == nil {
		t.Error("AsBatch on a mistyped payload should error")
	}
}
