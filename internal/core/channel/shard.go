// Intra-atom sharding primitives: splitting one batch of data quanta
// into shards a platform can process in parallel, and merging shard
// results back. The paper's platform layer works on batches (§3); a
// shard is a contiguous sub-batch, so the concatenation of shards in
// index order replays the original batch exactly — the invariant every
// order-sensitive merge (concat, stable re-sort) relies on.

package channel

import "rheem/internal/data"

// Partition splits a Collection or Batch channel into at most p
// non-empty shards of the same format. The split is contiguous and
// order-preserving: concatenating the shards in index order yields the
// original record sequence. Fewer than p shards are returned when the
// channel holds fewer than p records; an empty or single-record
// channel (or p ≤ 1) comes back as the one original channel, unsplit.
// Batch shards are zero-copy column-slice views sharing the parent's
// typed storage and validity bitmaps.
func Partition(ch *Channel, p int) ([]*Channel, error) {
	if ch.Format == Batch {
		return partitionBatch(ch, p)
	}
	recs, err := ch.AsCollection()
	if err != nil {
		return nil, err
	}
	if p > len(recs) {
		p = len(recs)
	}
	if p <= 1 {
		return []*Channel{ch}, nil
	}
	chunk := (len(recs) + p - 1) / p
	out := make([]*Channel, 0, p)
	for lo := 0; lo < len(recs); lo += chunk {
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		out = append(out, NewCollection(recs[lo:hi]))
	}
	return out, nil
}

// partitionBatch is Partition for the columnar format: contiguous
// zero-copy row-range views.
func partitionBatch(ch *Channel, p int) ([]*Channel, error) {
	b, err := ch.AsBatch()
	if err != nil {
		return nil, err
	}
	n := b.Len()
	if p > n {
		p = n
	}
	if p <= 1 {
		return []*Channel{ch}, nil
	}
	chunk := (n + p - 1) / p
	out := make([]*Channel, 0, p)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, NewBatch(b.Slice(lo, hi)))
	}
	return out, nil
}

// Concat merges Collection shards back into one Collection channel,
// preserving shard order — the inverse of Partition for record-wise
// (streamy) operator chains.
func Concat(shards []*Channel) (*Channel, error) {
	var n int64
	for _, s := range shards {
		n += s.Records
	}
	out := make([]data.Record, 0, n)
	for _, s := range shards {
		recs, err := s.AsCollection()
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return NewCollection(out), nil
}
