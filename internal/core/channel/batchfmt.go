// The columnar batch format's channel plumbing: the Format constant,
// typed wrap/unwrap helpers, and the hub converters that connect it to
// Collection in the conversion graph. The format itself lives in
// internal/core/batch; this file is what makes it a first-class
// citizen of the movement layer.

package channel

import (
	"fmt"
	"time"

	"rheem/internal/core/batch"
)

// Batch is the columnar in-memory format: a *batch.Batch of typed
// column slices with validity bitmaps. Like Collection it is a driver
// format rather than a platform-native one; vectorized platforms
// consume it directly, everything else reaches it through converters.
const Batch Format = "batch"

// NewBatch wraps a columnar batch in a Batch channel.
func NewBatch(b *batch.Batch) *Channel {
	return &Channel{
		Format:  Batch,
		Payload: b,
		Records: int64(b.Len()),
		Bytes:   b.Bytes(),
	}
}

// AsBatch returns the columnar payload of a Batch channel.
func (c *Channel) AsBatch() (*batch.Batch, error) {
	if c.Format != Batch {
		return nil, fmt.Errorf("channel: %s channel is not a batch", c.Format)
	}
	b, ok := c.Payload.(*batch.Batch)
	if !ok {
		return nil, fmt.Errorf("channel: batch channel holds %T", c.Payload)
	}
	return b, nil
}

// Batch conversion cost constants. The transposition is a single pass
// over typed storage, so it is priced well under the serializing
// platform converters — but the constants are chosen so that no
// existing direct route (Collection↔Table at 3ms + 2.0ns/B) ever
// becomes cheaper via a batch hop: two-hop fixed and per-byte sums
// both strictly exceed the direct edge. Batch-capable consumers win
// because they stop at the batch, skipping the second hop entirely.
const (
	batchFixed     = 500 * time.Microsecond
	batchPerByteNS = 0.8
)

// RegisterBatchConverters adds the Collection↔Batch hub edges to the
// conversion graph. engine.NewRegistry installs them in every
// registry; platform-native formats connect through their existing
// Collection edges or register direct batch edges of their own (the
// way relengine links Table↔Batch).
func RegisterBatchConverters(r *Registry) {
	r.Register(Converter{
		From: Collection, To: Batch,
		Fixed: batchFixed, PerByteNS: batchPerByteNS,
		Convert: func(ch *Channel) (*Channel, error) {
			recs, err := ch.AsCollection()
			if err != nil {
				return nil, err
			}
			return NewBatch(batch.FromRecords(recs)), nil
		},
	})
	r.Register(Converter{
		From: Batch, To: Collection,
		Fixed: batchFixed, PerByteNS: batchPerByteNS,
		Convert: func(ch *Channel) (*Channel, error) {
			b, err := ch.AsBatch()
			if err != nil {
				return nil, err
			}
			return NewCollection(b.ToRecords()), nil
		},
	})
}
