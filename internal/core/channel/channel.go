// Package channel models data movement between processing platforms
// and storage engines — the paper's "inter-platform cost model ...
// [capturing] the cost of transferring and transforming data from one
// processing platform to another" (§4.2, third requirement).
//
// A Channel is a handle to a dataset in some platform- or
// storage-native representation (Format). Platforms consume and
// produce channels in their native format; when an execution plan
// places adjacent task atoms on platforms with different native
// formats, the executor asks the conversion Registry for the cheapest
// chain of registered Converters and the optimizer charges that chain's
// cost to the plan. Conversion is therefore both *priced* (for the
// optimizer) and *performed* (for the executor) by the same graph,
// which keeps the two honest with each other.
package channel

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rheem/internal/data"
)

// Format names a native data representation. Formats are an open set:
// platforms and storage engines register theirs along with converters.
type Format string

// The built-in formats of the bundled platforms and stores.
const (
	// Collection is a []data.Record in driver memory — the hub format
	// every platform can convert to and from.
	Collection Format = "collection"
	// Partitioned is a [][]data.Record, the Spark simulator's RDD-like
	// native format.
	Partitioned Format = "partitioned"
	// Table is a relational-engine table reference.
	Table Format = "table"
	// CSVFile is a typed-header CSV file on the local filesystem.
	CSVFile Format = "csvfile"
	// DFSFile is a file in the simulated distributed filesystem.
	DFSFile Format = "dfs"
)

// Channel is a dataset handle in a specific format. Records and Bytes
// carry cardinality metadata when known (-1 otherwise) so converters
// and the virtual clock can account volume without materialising.
type Channel struct {
	Format  Format
	Payload any
	Records int64
	Bytes   int64
}

// NewCollection wraps records in a Collection channel.
func NewCollection(recs []data.Record) *Channel {
	return &Channel{
		Format:  Collection,
		Payload: recs,
		Records: int64(len(recs)),
		Bytes:   data.TotalBytes(recs),
	}
}

// AsCollection returns the record slice of a Collection channel.
func (c *Channel) AsCollection() ([]data.Record, error) {
	if c.Format != Collection {
		return nil, fmt.Errorf("channel: %s channel is not a collection", c.Format)
	}
	recs, ok := c.Payload.([]data.Record)
	if !ok {
		return nil, fmt.Errorf("channel: collection channel holds %T", c.Payload)
	}
	return recs, nil
}

// Converter is one edge of the conversion graph: it transforms a
// channel from one format to another at a modelled cost of
// Fixed + Bytes·PerByteNS nanoseconds.
type Converter struct {
	From, To  Format
	Fixed     time.Duration
	PerByteNS float64
	Convert   func(*Channel) (*Channel, error)
}

// cost prices moving the given byte volume through this converter.
func (c Converter) cost(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	return c.Fixed + time.Duration(float64(bytes)*c.PerByteNS)
}

// Registry is the conversion graph. Platforms and stores register
// converters for their formats at startup; the optimizer prices paths
// and the executor executes them — concurrently, when independent
// atoms convert their inputs in parallel, so the graph is guarded by
// a read-write lock.
type Registry struct {
	mu    sync.RWMutex
	edges map[Format][]Converter

	// convMu guards the cumulative conversion traffic ledger, kept
	// separate from mu so accounting a finished conversion never
	// contends with concurrent path searches.
	convMu sync.Mutex
	conv   map[[2]Format]*ConversionStat
}

// ConversionStat is the cumulative traffic over one (from, to)
// conversion route: how many conversions were performed end-to-end and
// how many bytes entered them. The live telemetry layer exports these
// as rheem_channel_conversions_total / _bytes_total.
type ConversionStat struct {
	From, To Format
	Count    int64
	Bytes    int64
}

// NewRegistry returns an empty conversion graph.
func NewRegistry() *Registry {
	return &Registry{
		edges: make(map[Format][]Converter),
		conv:  make(map[[2]Format]*ConversionStat),
	}
}

// recordConversion accounts one performed end-to-end conversion.
func (r *Registry) recordConversion(from, to Format, bytes int64) {
	r.convMu.Lock()
	key := [2]Format{from, to}
	s := r.conv[key]
	if s == nil {
		s = &ConversionStat{From: from, To: to}
		r.conv[key] = s
	}
	s.Count++
	if bytes > 0 {
		s.Bytes += bytes
	}
	r.convMu.Unlock()
}

// ConversionStats returns the cumulative per-route conversion traffic,
// sorted by (from, to) for deterministic output.
func (r *Registry) ConversionStats() []ConversionStat {
	r.convMu.Lock()
	out := make([]ConversionStat, 0, len(r.conv))
	for _, s := range r.conv {
		out = append(out, *s)
	}
	r.convMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Register adds a converter edge.
func (r *Registry) Register(c Converter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.edges[c.From] = append(r.edges[c.From], c)
}

// PathCost returns the cost of the cheapest conversion chain from one
// format to another for the given byte volume, and whether a path
// exists. Same-format queries cost zero.
func (r *Registry) PathCost(from, to Format, bytes int64) (time.Duration, bool) {
	_, cost, ok := r.shortestPath(from, to, bytes)
	return cost, ok
}

// Convert transforms ch into the requested format along the cheapest
// chain, returning the converted channel, the modelled movement cost,
// and the number of conversion steps taken.
func (r *Registry) Convert(ch *Channel, to Format) (*Channel, time.Duration, int, error) {
	if ch.Format == to {
		return ch, 0, 0, nil
	}
	path, cost, ok := r.shortestPath(ch.Format, to, ch.Bytes)
	if !ok {
		return nil, 0, 0, fmt.Errorf("channel: no conversion path %s → %s", ch.Format, to)
	}
	cur := ch
	for _, conv := range path {
		next, err := conv.Convert(cur)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("channel: converting %s → %s: %w", conv.From, conv.To, err)
		}
		if next.Format != conv.To {
			return nil, 0, 0, fmt.Errorf("channel: converter %s → %s produced %s", conv.From, conv.To, next.Format)
		}
		cur = next
	}
	r.recordConversion(ch.Format, to, ch.Bytes)
	return cur, cost, len(path), nil
}

// shortestPath runs Dijkstra over the (tiny) format graph. The volume
// is assumed preserved along the chain, which is accurate enough for
// pricing. The returned converters are executed by the caller without
// the lock held — converter functions may themselves use the registry.
//
// The search is fully deterministic: equal-cost frontier nodes are
// visited in Format name order (the frontier is a Go map, whose
// iteration order would otherwise leak into the result), and between
// equal-cost routes to the same node the shorter chain wins. Two runs
// over the same registry therefore always pick the same chain — the
// executor performs the exact conversions the optimizer priced.
func (r *Registry) shortestPath(from, to Format, bytes int64) ([]Converter, time.Duration, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	type state struct {
		cost time.Duration
		via  []Converter
		done bool
	}
	states := map[Format]*state{from: {}}
	for {
		// Pick the cheapest unfinished node (linear scan; the graph
		// has a handful of formats), breaking cost ties by name.
		var cur Format
		var curState *state
		for f, s := range states {
			if s.done {
				continue
			}
			if curState == nil || s.cost < curState.cost ||
				(s.cost == curState.cost && f < cur) {
				cur, curState = f, s
			}
		}
		if curState == nil {
			return nil, 0, false
		}
		if cur == to {
			return curState.via, curState.cost, true
		}
		curState.done = true
		for _, e := range r.edges[cur] {
			nc := curState.cost + e.cost(bytes)
			s, ok := states[e.To]
			better := !ok || (!s.done && (nc < s.cost ||
				(nc == s.cost && len(curState.via)+1 < len(s.via))))
			if better {
				via := make([]Converter, len(curState.via)+1)
				copy(via, curState.via)
				via[len(via)-1] = e
				states[e.To] = &state{cost: nc, via: via}
			}
		}
	}
}

// Formats returns all formats reachable as sources of converter edges,
// for diagnostics.
func (r *Registry) Formats() []Format {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Format, 0, len(r.edges))
	for f := range r.edges {
		out = append(out, f)
	}
	return out
}
