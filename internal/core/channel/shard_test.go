package channel

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rheem/internal/data"
)

func intChannel(n int) *Channel {
	recs := make([]data.Record, n)
	for i := range recs {
		recs[i] = data.NewRecord(data.Int(int64(i)), data.Str(fmt.Sprintf("r%d", i)))
	}
	return NewCollection(recs)
}

func TestPartitionContiguousAndOrderPreserving(t *testing.T) {
	for _, tc := range []struct {
		n, p, wantShards int
	}{
		{n: 100, p: 4, wantShards: 4},
		{n: 101, p: 4, wantShards: 4}, // uneven tail
		{n: 7, p: 3, wantShards: 3},
		{n: 4, p: 4, wantShards: 4},
		{n: 3, p: 8, wantShards: 3}, // p clamped to record count
		{n: 2, p: 2, wantShards: 2},
	} {
		ch := intChannel(tc.n)
		orig, _ := ch.AsCollection()
		shards, err := Partition(ch, tc.p)
		if err != nil {
			t.Fatalf("Partition(%d, %d): %v", tc.n, tc.p, err)
		}
		if len(shards) != tc.wantShards {
			t.Errorf("Partition(%d, %d) = %d shards, want %d", tc.n, tc.p, len(shards), tc.wantShards)
		}
		// Contiguous + order-preserving: concatenation in shard index
		// order replays the original sequence exactly.
		var replay []data.Record
		for i, s := range shards {
			recs, err := s.AsCollection()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				t.Errorf("Partition(%d, %d): shard %d is empty", tc.n, tc.p, i)
			}
			if s.Records != int64(len(recs)) {
				t.Errorf("shard %d metadata says %d records, holds %d", i, s.Records, len(recs))
			}
			replay = append(replay, recs...)
		}
		if len(replay) != len(orig) {
			t.Fatalf("Partition(%d, %d): shards replay %d records", tc.n, tc.p, len(replay))
		}
		for i := range orig {
			if !data.EqualRecords(orig[i], replay[i]) {
				t.Fatalf("Partition(%d, %d): record %d reordered", tc.n, tc.p, i)
			}
		}
	}
}

func TestPartitionDegenerateReturnsOriginal(t *testing.T) {
	for _, tc := range []struct {
		n, p int
	}{
		{n: 0, p: 4},  // empty
		{n: 1, p: 4},  // single record
		{n: 10, p: 1}, // p ≤ 1
		{n: 10, p: 0},
	} {
		ch := intChannel(tc.n)
		shards, err := Partition(ch, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != 1 || shards[0] != ch {
			t.Errorf("Partition(n=%d, p=%d) = %d shards, want the original channel unsplit",
				tc.n, tc.p, len(shards))
		}
	}
}

func TestPartitionSharesBackingArray(t *testing.T) {
	// Shards are slice views into the original collection — Partition
	// must not copy a large batch P times.
	ch := intChannel(16)
	orig, _ := ch.AsCollection()
	shards, err := Partition(ch, 4)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := shards[0].AsCollection()
	if &recs[0] != &orig[0] {
		t.Error("shard 0 does not alias the original backing array")
	}
}

func TestPartitionRejectsNonCollection(t *testing.T) {
	if _, err := Partition(&Channel{Format: Table, Payload: 42}, 4); err == nil {
		t.Error("Partition accepted a table channel")
	}
}

func TestConcatInvertsPartition(t *testing.T) {
	ch := intChannel(53)
	orig, _ := ch.AsCollection()
	shards, err := Partition(ch, 5)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Concat(shards)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Format != Collection || merged.Records != int64(len(orig)) {
		t.Fatalf("Concat = %+v", merged)
	}
	got, _ := merged.AsCollection()
	for i := range orig {
		if !data.EqualRecords(orig[i], got[i]) {
			t.Fatalf("Concat reordered record %d", i)
		}
	}
	if _, err := Concat([]*Channel{{Format: Table}}); err == nil {
		t.Error("Concat accepted a non-collection shard")
	}
}

// --- conversion-chain property test -----------------------------------

// The converters below move real records between synthetic formats the
// way platform converters do (re-chunking, re-ordering, serialising),
// so a random walk over the graph exercises genuine payload
// transformations, not tagged strings.

// chunked is a Partitioned-style [][]data.Record payload.
func chunkRecs(recs []data.Record, chunk int) [][]data.Record {
	var out [][]data.Record
	for lo := 0; lo < len(recs); lo += chunk {
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		out = append(out, recs[lo:hi])
	}
	return out
}

// propRegistry wires a conversion graph over four record-carrying
// formats: collection ↔ partitioned (chunked), collection ↔ dfs
// (binary-serialised bytes), partitioned → table (flattened in reverse
// chunk order — order-destroying but multiset-preserving, like a
// shuffle), table → collection.
func propRegistry() *Registry {
	r := NewRegistry()
	asRecs := func(c *Channel) []data.Record {
		recs, _ := c.Payload.([]data.Record)
		return recs
	}
	r.Register(Converter{From: Collection, To: Partitioned, Fixed: 1,
		Convert: func(c *Channel) (*Channel, error) {
			return &Channel{Format: Partitioned, Payload: chunkRecs(asRecs(c), 3),
				Records: c.Records, Bytes: c.Bytes}, nil
		}})
	r.Register(Converter{From: Partitioned, To: Collection, Fixed: 1,
		Convert: func(c *Channel) (*Channel, error) {
			parts, _ := c.Payload.([][]data.Record)
			var flat []data.Record
			for _, p := range parts {
				flat = append(flat, p...)
			}
			return NewCollection(flat), nil
		}})
	r.Register(Converter{From: Collection, To: DFSFile, Fixed: 1,
		Convert: func(c *Channel) (*Channel, error) {
			var buf bytes.Buffer
			if _, err := data.WriteBinary(&buf, asRecs(c)); err != nil {
				return nil, err
			}
			return &Channel{Format: DFSFile, Payload: buf.Bytes(),
				Records: c.Records, Bytes: int64(buf.Len())}, nil
		}})
	r.Register(Converter{From: DFSFile, To: Collection, Fixed: 1,
		Convert: func(c *Channel) (*Channel, error) {
			raw, _ := c.Payload.([]byte)
			recs, err := data.ReadBinary(bytes.NewReader(raw))
			if err != nil {
				return nil, err
			}
			return NewCollection(recs), nil
		}})
	r.Register(Converter{From: Partitioned, To: Table, Fixed: 1,
		Convert: func(c *Channel) (*Channel, error) {
			parts, _ := c.Payload.([][]data.Record)
			var flat []data.Record
			for i := len(parts) - 1; i >= 0; i-- {
				flat = append(flat, parts[i]...)
			}
			return &Channel{Format: Table, Payload: flat,
				Records: c.Records, Bytes: c.Bytes}, nil
		}})
	r.Register(Converter{From: Table, To: Collection, Fixed: 1,
		Convert: func(c *Channel) (*Channel, error) {
			return NewCollection(asRecs(c)), nil
		}})
	return r
}

// recordMultiset canonicalises records as their sorted individual
// binary encodings, so order-destroying conversions compare equal.
func recordMultiset(t *testing.T, recs []data.Record) []string {
	t.Helper()
	out := make([]string, len(recs))
	for i, r := range recs {
		var buf bytes.Buffer
		if _, err := data.WriteBinary(&buf, []data.Record{r}); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.String()
	}
	sort.Strings(out)
	return out
}

func randomRecords(rng *rand.Rand, n int) []data.Record {
	recs := make([]data.Record, n)
	for i := range recs {
		// Occasional nulls so the batch edges exercise their validity
		// bitmaps, not just the dense typed fast path.
		f0, f2 := data.Int(rng.Int63n(1000)-500), data.Float(rng.NormFloat64())
		if rng.Intn(8) == 0 {
			f0 = data.Null()
		}
		if rng.Intn(8) == 0 {
			f2 = data.Null()
		}
		recs[i] = data.NewRecord(f0, data.Str(fmt.Sprintf("s%x", rng.Uint32())), f2)
	}
	return recs
}

// TestConversionChainsPreserveMultiset drives random conversion walks
// through the registry and checks the invariant every converter must
// uphold: whatever the route — re-chunking, serialisation round trips,
// order-destroying flattens — the multiset of data quanta that comes
// out is the multiset that went in, and the cardinality metadata stays
// truthful. Seeded, so a failure reproduces.
func TestConversionChainsPreserveMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	reg := propRegistry()
	// Walk the real columnar edges too — the production converters, not
	// test doubles — so batch hops interleave with the synthetic routes.
	RegisterBatchConverters(reg)
	formats := []Format{Collection, Partitioned, Table, DFSFile, Batch}
	for trial := 0; trial < 100; trial++ {
		recs := randomRecords(rng, 1+rng.Intn(64))
		want := recordMultiset(t, recs)
		ch := NewCollection(recs)
		steps := 1 + rng.Intn(8)
		var route []Format
		for s := 0; s < steps; s++ {
			to := formats[rng.Intn(len(formats))]
			route = append(route, to)
			next, _, _, err := reg.Convert(ch, to)
			if err != nil {
				t.Fatalf("trial %d route %v: %v", trial, route, err)
			}
			if next.Records != int64(len(recs)) {
				t.Fatalf("trial %d route %v: cardinality %d, want %d",
					trial, route, next.Records, len(recs))
			}
			ch = next
		}
		final, _, _, err := reg.Convert(ch, Collection)
		if err != nil {
			t.Fatalf("trial %d route %v back to collection: %v", trial, route, err)
		}
		out, err := final.AsCollection()
		if err != nil {
			t.Fatal(err)
		}
		got := recordMultiset(t, out)
		if len(got) != len(want) {
			t.Fatalf("trial %d route %v: %d records out, %d in", trial, route, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d route %v: multiset diverged at %d", trial, route, i)
			}
		}
	}
}
