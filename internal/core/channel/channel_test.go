package channel

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rheem/internal/data"
)

func TestNewCollectionAndAsCollection(t *testing.T) {
	recs := []data.Record{data.NewRecord(data.Int(1)), data.NewRecord(data.Int(2))}
	ch := NewCollection(recs)
	if ch.Format != Collection || ch.Records != 2 {
		t.Errorf("channel = %+v", ch)
	}
	if ch.Bytes <= 0 {
		t.Error("bytes not accounted")
	}
	got, err := ch.AsCollection()
	if err != nil || len(got) != 2 {
		t.Errorf("AsCollection = %v, %v", got, err)
	}
	bad := &Channel{Format: Table, Payload: 42}
	if _, err := bad.AsCollection(); err == nil {
		t.Error("AsCollection on table channel accepted")
	}
	corrupt := &Channel{Format: Collection, Payload: "nope"}
	if _, err := corrupt.AsCollection(); err == nil {
		t.Error("AsCollection on corrupt payload accepted")
	}
}

// upper registers a converter that tags the payload string, for path
// verification.
func tagConv(from, to Format, fixed time.Duration, perByte float64) Converter {
	return Converter{
		From: from, To: to, Fixed: fixed, PerByteNS: perByte,
		Convert: func(c *Channel) (*Channel, error) {
			s, _ := c.Payload.(string)
			return &Channel{Format: to, Payload: s + "→" + string(to), Records: c.Records, Bytes: c.Bytes}, nil
		},
	}
}

func TestConvertDirect(t *testing.T) {
	r := NewRegistry()
	r.Register(tagConv(Collection, Table, time.Millisecond, 0))
	ch := &Channel{Format: Collection, Payload: "start", Bytes: 100}
	out, cost, steps, err := r.Convert(ch, Table)
	if err != nil {
		t.Fatal(err)
	}
	if out.Format != Table || steps != 1 || cost != time.Millisecond {
		t.Errorf("out=%+v cost=%v steps=%d", out, cost, steps)
	}
}

func TestConvertSameFormatIsFree(t *testing.T) {
	r := NewRegistry()
	ch := &Channel{Format: Collection, Payload: "x"}
	out, cost, steps, err := r.Convert(ch, Collection)
	if err != nil || out != ch || cost != 0 || steps != 0 {
		t.Errorf("same-format conversion not free: %v %v %d %v", out, cost, steps, err)
	}
}

func TestConvertMultiHopCheapestPath(t *testing.T) {
	r := NewRegistry()
	// Expensive direct edge vs cheap two-hop path.
	r.Register(tagConv(Collection, DFSFile, 10*time.Second, 0))
	r.Register(tagConv(Collection, Partitioned, time.Millisecond, 0))
	r.Register(tagConv(Partitioned, DFSFile, time.Millisecond, 0))
	ch := &Channel{Format: Collection, Payload: "s", Bytes: 10}
	out, cost, steps, err := r.Convert(ch, DFSFile)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 2 || cost != 2*time.Millisecond {
		t.Errorf("took steps=%d cost=%v (wanted the 2-hop path)", steps, cost)
	}
	if s, _ := out.Payload.(string); !strings.Contains(s, "partitioned") {
		t.Errorf("payload path %q does not go via partitioned", s)
	}
}

func TestPerByteCostInfluencesPath(t *testing.T) {
	r := NewRegistry()
	// Edge A: no fixed cost but expensive per byte. Edge B: fixed cost,
	// free per byte. Small payloads should take A, large payloads B.
	r.Register(Converter{From: Collection, To: Table, Fixed: 0, PerByteNS: 1000,
		Convert: func(c *Channel) (*Channel, error) {
			return &Channel{Format: Table, Payload: "A"}, nil
		}})
	r.Register(Converter{From: Collection, To: CSVFile, Fixed: time.Millisecond,
		Convert: func(c *Channel) (*Channel, error) {
			return &Channel{Format: CSVFile, Payload: "B1"}, nil
		}})
	r.Register(Converter{From: CSVFile, To: Table, Fixed: 0,
		Convert: func(c *Channel) (*Channel, error) {
			return &Channel{Format: Table, Payload: "B2"}, nil
		}})

	small := &Channel{Format: Collection, Bytes: 10}
	_, costSmall, stepsSmall, err := r.Convert(small, Table)
	if err != nil {
		t.Fatal(err)
	}
	if stepsSmall != 1 {
		t.Errorf("small payload took %d steps (cost %v)", stepsSmall, costSmall)
	}
	large := &Channel{Format: Collection, Bytes: 10_000_000}
	_, _, stepsLarge, err := r.Convert(large, Table)
	if err != nil {
		t.Fatal(err)
	}
	if stepsLarge != 2 {
		t.Errorf("large payload took %d steps (should prefer fixed-cost path)", stepsLarge)
	}
}

func TestConvertNoPath(t *testing.T) {
	r := NewRegistry()
	ch := &Channel{Format: Collection}
	if _, _, _, err := r.Convert(ch, Table); err == nil {
		t.Error("conversion without path accepted")
	}
	if _, ok := r.PathCost(Collection, Table, 0); ok {
		t.Error("PathCost claims a path exists")
	}
}

func TestPathCost(t *testing.T) {
	r := NewRegistry()
	r.Register(tagConv(Collection, Table, time.Second, 1))
	cost, ok := r.PathCost(Collection, Table, 1000)
	if !ok {
		t.Fatal("no path")
	}
	if cost != time.Second+1000*time.Nanosecond {
		t.Errorf("cost = %v", cost)
	}
	if c, ok := r.PathCost(Table, Table, 5); !ok || c != 0 {
		t.Error("identity path not free")
	}
}

// TestShortestPathDeterministic pins the tie-breaking of the path
// search: with two distinct equal-cost routes the search must pick the
// same one on every call — map iteration order used to decide the
// winner, so the executor could perform a different (equally priced)
// conversion chain run to run. Ties break toward the lexicographically
// smaller intermediate format.
func TestShortestPathDeterministic(t *testing.T) {
	r := NewRegistry()
	// Two equal-cost two-hop routes: via "csvfile" and via "partitioned".
	r.Register(tagConv(Collection, Partitioned, time.Millisecond, 0))
	r.Register(tagConv(Collection, CSVFile, time.Millisecond, 0))
	r.Register(tagConv(Partitioned, DFSFile, time.Millisecond, 0))
	r.Register(tagConv(CSVFile, DFSFile, time.Millisecond, 0))

	var first string
	for i := 0; i < 200; i++ {
		ch := &Channel{Format: Collection, Payload: "s", Bytes: 64}
		out, cost, steps, err := r.Convert(ch, DFSFile)
		if err != nil {
			t.Fatal(err)
		}
		if steps != 2 || cost != 2*time.Millisecond {
			t.Fatalf("run %d: steps=%d cost=%v", i, steps, cost)
		}
		path, _ := out.Payload.(string)
		if first == "" {
			first = path
		} else if path != first {
			t.Fatalf("run %d took %q, run 0 took %q", i, path, first)
		}
	}
	if !strings.Contains(first, string(CSVFile)) {
		t.Errorf("tie broke to %q, want the lexicographically smaller csvfile route", first)
	}
}

// TestEqualCostPrefersShorterChain pins the second tie-break: when a
// direct edge and a multi-hop route price identically, the direct edge
// wins — fewer real conversions for the same modelled cost.
func TestEqualCostPrefersShorterChain(t *testing.T) {
	r := NewRegistry()
	r.Register(tagConv(Collection, DFSFile, 2*time.Millisecond, 0))
	r.Register(tagConv(Collection, Partitioned, time.Millisecond, 0))
	r.Register(tagConv(Partitioned, DFSFile, time.Millisecond, 0))
	for i := 0; i < 50; i++ {
		_, cost, steps, err := r.Convert(&Channel{Format: Collection, Payload: "s"}, DFSFile)
		if err != nil {
			t.Fatal(err)
		}
		if steps != 1 || cost != 2*time.Millisecond {
			t.Fatalf("run %d: steps=%d cost=%v, want the direct edge", i, steps, cost)
		}
	}
}

func TestConvertErrorMidChain(t *testing.T) {
	// First hop succeeds, second hop fails: the error must surface,
	// name the failing hop, and preserve the cause for errors.Is.
	r := NewRegistry()
	boom := errors.New("mid-chain boom")
	r.Register(tagConv(Collection, Partitioned, time.Millisecond, 0))
	r.Register(Converter{From: Partitioned, To: DFSFile,
		Convert: func(*Channel) (*Channel, error) { return nil, boom }})
	_, _, _, err := r.Convert(&Channel{Format: Collection, Payload: "s"}, DFSFile)
	if !errors.Is(err, boom) {
		t.Fatalf("mid-chain error not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "partitioned → dfs") {
		t.Errorf("error %q does not name the failing hop", err)
	}
}

func TestPathCostNoRoute(t *testing.T) {
	// A graph with edges, just none reaching the target — distinct from
	// the empty-registry case.
	r := NewRegistry()
	r.Register(tagConv(Collection, Partitioned, time.Millisecond, 0))
	if _, ok := r.PathCost(Collection, Table, 100); ok {
		t.Error("PathCost found a route to an unreachable format")
	}
	if _, _, _, err := r.Convert(&Channel{Format: Collection}, Table); err == nil ||
		!strings.Contains(err.Error(), "no conversion path") {
		t.Errorf("Convert error = %v, want a no-path failure", err)
	}
	// The reverse direction is also unreachable: edges are directed.
	if _, ok := r.PathCost(Partitioned, Collection, 100); ok {
		t.Error("PathCost treated a directed edge as bidirectional")
	}
}

func TestConverterErrorPropagates(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	r.Register(Converter{From: Collection, To: Table,
		Convert: func(*Channel) (*Channel, error) { return nil, boom }})
	if _, _, _, err := r.Convert(&Channel{Format: Collection}, Table); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestConverterFormatMismatchDetected(t *testing.T) {
	r := NewRegistry()
	r.Register(Converter{From: Collection, To: Table,
		Convert: func(c *Channel) (*Channel, error) {
			return &Channel{Format: CSVFile}, nil // lies about its output
		}})
	if _, _, _, err := r.Convert(&Channel{Format: Collection}, Table); err == nil {
		t.Error("format-lying converter accepted")
	}
}

func TestFormats(t *testing.T) {
	r := NewRegistry()
	r.Register(tagConv(Collection, Table, 0, 0))
	r.Register(tagConv(Table, Collection, 0, 0))
	if got := len(r.Formats()); got != 2 {
		t.Errorf("Formats() = %d entries", got)
	}
}

func TestConversionStats(t *testing.T) {
	r := NewRegistry()
	r.Register(tagConv(Collection, Table, time.Millisecond, 0))
	r.Register(tagConv(Table, CSVFile, time.Millisecond, 0))

	if got := r.ConversionStats(); len(got) != 0 {
		t.Fatalf("fresh registry has stats: %+v", got)
	}

	// Two multi-hop conversions over the same route account as one
	// (from, to) entry; same-format no-ops and failures don't count.
	for i := 0; i < 2; i++ {
		ch := &Channel{Format: Collection, Payload: "x", Bytes: 100}
		if _, _, _, err := r.Convert(ch, CSVFile); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := r.Convert(&Channel{Format: Table, Payload: "x", Bytes: 7}, Table); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.Convert(&Channel{Format: DFSFile}, Table); err == nil {
		t.Fatal("pathless conversion accepted")
	}

	stats := r.ConversionStats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	s := stats[0]
	if s.From != Collection || s.To != CSVFile || s.Count != 2 || s.Bytes != 200 {
		t.Errorf("stat = %+v", s)
	}

	// Deterministic (from, to) ordering.
	r.Register(tagConv(CSVFile, DFSFile, time.Millisecond, 0))
	if _, _, _, err := r.Convert(&Channel{Format: CSVFile, Payload: "x", Bytes: 1}, DFSFile); err != nil {
		t.Fatal(err)
	}
	stats = r.ConversionStats()
	if len(stats) != 2 || stats[0].From > stats[1].From {
		t.Errorf("stats not sorted: %+v", stats)
	}
}
