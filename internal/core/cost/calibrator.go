// The cost calibrator closes the optimizer's audit loop (RHEEMix-style
// cost learning): completed runs report, per operator kind and
// platform, what the cost model *predicted* and what execution
// *measured*, and the calibrator folds those residuals into
// multiplicative correction factors the optimizer applies to every
// subsequent plan. Factors always correct the RAW (uncalibrated) model
// output — the executor records raw estimates in its spans and audits
// precisely so the learning target stays fixed; learning against
// already-corrected estimates would feed the correction back into
// itself and diverge.
//
// Each cell keeps an exponentially decayed geometric mean of observed
// actual/estimated ratios: per observation, weight w ← w·λ + 1 and
// sumLog ← sumLog·λ + log(ratio), so the factor exp(sumLog/w) tracks
// recent traffic and old mistakes fade. A min-sample guard keeps the
// factor at exactly 1 until a cell has seen enough evidence, and hard
// clamps on both the per-observation ratio and the resulting factor
// guarantee a factor is always a positive, finite multiplier — the
// calibrator can re-rank platforms, but it can never price one at zero
// or below.
package cost

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Calibrator defaults; CalibratorConfig overrides them per instance.
const (
	// DefaultDecay is the per-observation retention λ: each new
	// observation multiplies the accumulated weight by λ before adding
	// its own, so the effective memory is ~1/(1−λ) observations.
	DefaultDecay = 0.9
	// DefaultMinSamples is how many observations a cell needs before
	// its factor applies; below it the multiplier is exactly 1.
	DefaultMinSamples = 3
	// DefaultMinFactor / DefaultMaxFactor clamp the correction range: a
	// learned factor never scales a cost by more than 16× in either
	// direction, so one pathological run cannot zero a platform out.
	DefaultMinFactor = 1.0 / 16
	DefaultMaxFactor = 16.0
	// ratioClamp bounds a single observation's actual/estimated ratio
	// before it enters the decayed log-sum, so a wild outlier (a stalled
	// host, a zero-cost estimate) cannot dominate the geometric mean.
	ratioClamp = 1024.0
)

// CalibratorConfig tunes a Calibrator. Zero fields select defaults.
type CalibratorConfig struct {
	// Decay is the per-observation retention λ in (0, 1).
	Decay float64
	// MinSamples is the min-sample guard (observations before a cell's
	// factor applies). Negative means 1 (apply immediately).
	MinSamples int
	// MinFactor/MaxFactor clamp learned factors; both must be positive
	// with MinFactor ≤ MaxFactor.
	MinFactor float64
	MaxFactor float64
}

func (c CalibratorConfig) withDefaults() CalibratorConfig {
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = DefaultDecay
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.MinSamples < 1 {
		c.MinSamples = 1
	}
	if c.MinFactor <= 0 || math.IsInf(c.MinFactor, 0) || math.IsNaN(c.MinFactor) {
		c.MinFactor = DefaultMinFactor
	}
	if c.MaxFactor <= 0 || math.IsInf(c.MaxFactor, 0) || math.IsNaN(c.MaxFactor) {
		c.MaxFactor = DefaultMaxFactor
	}
	if c.MinFactor > c.MaxFactor {
		c.MinFactor, c.MaxFactor = c.MaxFactor, c.MinFactor
	}
	return c
}

// AtomObs is one time observation from a completed run: for operators
// of one kind executed on one platform, the raw model estimate and the
// measured runtime attributed to them.
type AtomObs struct {
	Kind      string
	Platform  string
	Estimated time.Duration // raw (uncalibrated) model estimate
	Actual    time.Duration // measured execution time
}

// CardObs is one cardinality observation: an operator kind's raw
// rule-derived output-cardinality estimate versus the observed count.
type CardObs struct {
	Kind      string
	Estimated int64 // raw (uncalibrated) rule-derived estimate
	Actual    int64 // observed output cardinality
}

// cellKey identifies one cost-correction cell.
type cellKey struct {
	Kind     string
	Platform string
}

// cell is the decayed-geometric-mean state of one correction factor.
type cell struct {
	w      float64 // decayed observation weight
	sumLog float64 // decayed sum of log(ratio)
	n      int64   // lifetime observation count (min-sample guard)
}

func (ce *cell) observe(ratio, decay float64) {
	if !(ratio > 0) || math.IsInf(ratio, 0) || math.IsNaN(ratio) {
		return
	}
	if ratio > ratioClamp {
		ratio = ratioClamp
	}
	if ratio < 1/ratioClamp {
		ratio = 1 / ratioClamp
	}
	ce.w = ce.w*decay + 1
	ce.sumLog = ce.sumLog*decay + math.Log(ratio)
	ce.n++
}

func (ce *cell) factor(cfg CalibratorConfig) float64 {
	if ce == nil || ce.n < int64(cfg.MinSamples) || ce.w <= 0 {
		return 1
	}
	f := math.Exp(ce.sumLog / ce.w)
	if math.IsNaN(f) || f < cfg.MinFactor {
		return cfg.MinFactor
	}
	if f > cfg.MaxFactor {
		return cfg.MaxFactor
	}
	return f
}

// Calibrator learns per-(operator kind, platform) cost corrections and
// per-kind cardinality corrections from completed runs. All methods
// are safe for concurrent use — the optimizer reads factors while runs
// fold — and every method tolerates a nil receiver (factor 1, no-op
// fold), so call sites need no nil guards.
type Calibrator struct {
	mu    sync.RWMutex
	cfg   CalibratorConfig
	cost  map[cellKey]*cell
	card  map[string]*cell
	folds int64 // Fold batches applied (restart-surviving via the codec)
}

// NewCalibrator returns an empty calibrator (every factor 1).
func NewCalibrator(cfg CalibratorConfig) *Calibrator {
	return &Calibrator{
		cfg:  cfg.withDefaults(),
		cost: map[cellKey]*cell{},
		card: map[string]*cell{},
	}
}

// Config returns the effective (default-filled) configuration.
func (c *Calibrator) Config() CalibratorConfig {
	if c == nil {
		return CalibratorConfig{}.withDefaults()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.cfg
}

// Fold absorbs one completed run's observations. Observations with a
// non-positive estimate or actual carry no signal and are skipped —
// in particular a zero actual (an operator that produced nothing in no
// measurable time) can never drive a factor toward zero.
func (c *Calibrator) Fold(atoms []AtomObs, cards []CardObs) {
	if c == nil || (len(atoms) == 0 && len(cards) == 0) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range atoms {
		if o.Kind == "" || o.Platform == "" || o.Estimated <= 0 || o.Actual <= 0 {
			continue
		}
		k := cellKey{Kind: o.Kind, Platform: o.Platform}
		ce := c.cost[k]
		if ce == nil {
			ce = &cell{}
			c.cost[k] = ce
		}
		ce.observe(float64(o.Actual)/float64(o.Estimated), c.cfg.Decay)
	}
	for _, o := range cards {
		if o.Kind == "" || o.Estimated <= 0 || o.Actual <= 0 {
			continue
		}
		ce := c.card[o.Kind]
		if ce == nil {
			ce = &cell{}
			c.card[o.Kind] = ce
		}
		ce.observe(float64(o.Actual)/float64(o.Estimated), c.cfg.Decay)
	}
	c.folds++
}

// CostFactor returns the multiplier for an operator kind's cost on a
// platform: a positive, finite value, exactly 1 until the cell clears
// the min-sample guard. Safe on a nil calibrator.
func (c *Calibrator) CostFactor(kind, platform string) float64 {
	if c == nil {
		return 1
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.cost[cellKey{Kind: kind, Platform: platform}].factor(c.cfg)
}

// CardFactor returns the multiplier for an operator kind's estimated
// output cardinality (cardinalities are platform-independent, so card
// cells key on kind alone). Safe on a nil calibrator.
func (c *Calibrator) CardFactor(kind string) float64 {
	if c == nil {
		return 1
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.card[kind].factor(c.cfg)
}

// Folds returns how many Fold batches the calibrator has absorbed
// (including folds rehydrated through Decode).
func (c *Calibrator) Folds() int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.folds
}

// CalibrationCell is one learned factor in a snapshot.
type CalibrationCell struct {
	Kind     string  `json:"kind"`
	Platform string  `json:"platform,omitempty"` // empty on card cells
	Factor   float64 `json:"factor"`
	Samples  int64   `json:"samples"`
	// Applied reports whether the cell has cleared the min-sample guard
	// (false means the optimizer still sees factor 1 from it).
	Applied bool `json:"applied"`
}

// CalibrationSnapshot is the debug view served by GET /calibration.
type CalibrationSnapshot struct {
	Decay      float64           `json:"decay"`
	MinSamples int               `json:"min_samples"`
	MinFactor  float64           `json:"min_factor"`
	MaxFactor  float64           `json:"max_factor"`
	Folds      int64             `json:"folds"`
	Cost       []CalibrationCell `json:"cost"`
	Card       []CalibrationCell `json:"card"`
}

// Snapshot exports the calibrator's state, cells sorted by key. Safe
// on a nil calibrator (returns nil).
func (c *Calibrator) Snapshot() *CalibrationSnapshot {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := &CalibrationSnapshot{
		Decay:      c.cfg.Decay,
		MinSamples: c.cfg.MinSamples,
		MinFactor:  c.cfg.MinFactor,
		MaxFactor:  c.cfg.MaxFactor,
		Folds:      c.folds,
		Cost:       make([]CalibrationCell, 0, len(c.cost)),
		Card:       make([]CalibrationCell, 0, len(c.card)),
	}
	for k, ce := range c.cost {
		s.Cost = append(s.Cost, CalibrationCell{
			Kind: k.Kind, Platform: k.Platform,
			Factor: ce.factor(c.cfg), Samples: ce.n,
			Applied: ce.n >= int64(c.cfg.MinSamples),
		})
	}
	for k, ce := range c.card {
		s.Card = append(s.Card, CalibrationCell{
			Kind:   k,
			Factor: ce.factor(c.cfg), Samples: ce.n,
			Applied: ce.n >= int64(c.cfg.MinSamples),
		})
	}
	sortCells(s.Cost)
	sortCells(s.Card)
	return s
}

func sortCells(cells []CalibrationCell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Kind != cells[j].Kind {
			return cells[i].Kind < cells[j].Kind
		}
		return cells[i].Platform < cells[j].Platform
	})
}

// --- persisted codec ----------------------------------------------------
//
// Binary, versioned, deterministic (cells sorted by key on encode) and
// decode-hardened: length prefixes are attacker-controlled until the
// payload behind them has been read, so preallocation is capped and
// every float is validated — a corrupt or hostile store can fail the
// load, but it can never install a NaN factor or a multi-gigabyte
// allocation. Decode→Encode is a fixpoint (enforced by
// FuzzCalibrationRoundTrip).

// calMagic and calVersion head every encoded calibration state.
var calMagic = []byte("RHCAL")

const calVersion = 1

// codec caps, mirroring data.ReadBinary's preallocation discipline.
const (
	calMaxString   = 1 << 10 // operator kinds and platform IDs are short
	calMaxPrealloc = 1 << 12 // cells preallocated before payload is seen
)

// Encode serialises the calibrator's full state.
func (c *Calibrator) Encode() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var buf bytes.Buffer
	buf.Write(calMagic)
	buf.WriteByte(calVersion)
	putF := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf.Write(b[:])
	}
	putV := func(v uint64) {
		var b [binary.MaxVarintLen64]byte
		buf.Write(b[:binary.PutUvarint(b[:], v)])
	}
	putS := func(s string) {
		putV(uint64(len(s)))
		buf.WriteString(s)
	}
	putF(c.cfg.Decay)
	putV(uint64(c.cfg.MinSamples))
	putF(c.cfg.MinFactor)
	putF(c.cfg.MaxFactor)
	putV(uint64(c.folds))

	costKeys := make([]cellKey, 0, len(c.cost))
	for k := range c.cost {
		costKeys = append(costKeys, k)
	}
	sort.Slice(costKeys, func(i, j int) bool {
		if costKeys[i].Kind != costKeys[j].Kind {
			return costKeys[i].Kind < costKeys[j].Kind
		}
		return costKeys[i].Platform < costKeys[j].Platform
	})
	putV(uint64(len(costKeys)))
	for _, k := range costKeys {
		ce := c.cost[k]
		putS(k.Kind)
		putS(k.Platform)
		putF(ce.w)
		putF(ce.sumLog)
		putV(uint64(ce.n))
	}

	cardKeys := make([]string, 0, len(c.card))
	for k := range c.card {
		cardKeys = append(cardKeys, k)
	}
	sort.Strings(cardKeys)
	putV(uint64(len(cardKeys)))
	for _, k := range cardKeys {
		ce := c.card[k]
		putS(k)
		putF(ce.w)
		putF(ce.sumLog)
		putV(uint64(ce.n))
	}
	return buf.Bytes()
}

// calReader decodes the calibration wire format with validation.
type calReader struct {
	r *bytes.Reader
}

func (d *calReader) f64() (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		return 0, err
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("cost: calibration decode: non-finite float")
	}
	return f, nil
}

func (d *calReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(d.r)
}

func (d *calReader) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > calMaxString {
		return "", fmt.Errorf("cost: calibration decode: string length %d exceeds cap", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *calReader) cell() (cell, error) {
	w, err := d.f64()
	if err != nil {
		return cell{}, err
	}
	sumLog, err := d.f64()
	if err != nil {
		return cell{}, err
	}
	n, err := d.uvarint()
	if err != nil {
		return cell{}, err
	}
	if w < 0 || n > math.MaxInt64 {
		return cell{}, fmt.Errorf("cost: calibration decode: invalid cell state")
	}
	return cell{w: w, sumLog: sumLog, n: int64(n)}, nil
}

func calPrealloc(n uint64) int {
	if n > calMaxPrealloc {
		return calMaxPrealloc
	}
	return int(n)
}

// DecodeCalibrator parses state written by Encode into a fresh
// calibrator. The embedded configuration is re-validated through the
// same defaulting as NewCalibrator, so a decoded calibrator upholds
// every factor invariant the original did.
func DecodeCalibrator(b []byte) (*Calibrator, error) {
	if len(b) < len(calMagic)+1 || !bytes.Equal(b[:len(calMagic)], calMagic) {
		return nil, fmt.Errorf("cost: calibration decode: bad magic")
	}
	if v := b[len(calMagic)]; v != calVersion {
		return nil, fmt.Errorf("cost: calibration decode: unsupported version %d", v)
	}
	d := &calReader{r: bytes.NewReader(b[len(calMagic)+1:])}
	var cfg CalibratorConfig
	var err error
	if cfg.Decay, err = d.f64(); err != nil {
		return nil, err
	}
	minSamples, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if minSamples > math.MaxInt32 {
		return nil, fmt.Errorf("cost: calibration decode: min_samples %d out of range", minSamples)
	}
	cfg.MinSamples = int(minSamples)
	if cfg.MinFactor, err = d.f64(); err != nil {
		return nil, err
	}
	if cfg.MaxFactor, err = d.f64(); err != nil {
		return nil, err
	}
	if cfg != cfg.withDefaults() {
		return nil, fmt.Errorf("cost: calibration decode: config outside valid range")
	}
	folds, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if folds > math.MaxInt64 {
		return nil, fmt.Errorf("cost: calibration decode: folds out of range")
	}

	cal := NewCalibrator(cfg)
	cal.folds = int64(folds)

	nCost, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	costKeys := make([]cellKey, 0, calPrealloc(nCost))
	for i := uint64(0); i < nCost; i++ {
		var k cellKey
		if k.Kind, err = d.str(); err != nil {
			return nil, err
		}
		if k.Platform, err = d.str(); err != nil {
			return nil, err
		}
		ce, err := d.cell()
		if err != nil {
			return nil, err
		}
		// Strictly ascending keys make Decode∘Encode a fixpoint and
		// reject duplicate cells in one check.
		if len(costKeys) > 0 {
			prev := costKeys[len(costKeys)-1]
			if k.Kind < prev.Kind || (k.Kind == prev.Kind && k.Platform <= prev.Platform) {
				return nil, fmt.Errorf("cost: calibration decode: cost cells out of order")
			}
		}
		costKeys = append(costKeys, k)
		cal.cost[k] = &ce
	}

	nCard, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	cardKeys := make([]string, 0, calPrealloc(nCard))
	for i := uint64(0); i < nCard; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		ce, err := d.cell()
		if err != nil {
			return nil, err
		}
		if len(cardKeys) > 0 && k <= cardKeys[len(cardKeys)-1] {
			return nil, fmt.Errorf("cost: calibration decode: card cells out of order")
		}
		cardKeys = append(cardKeys, k)
		cal.card[k] = &ce
	}
	if d.r.Len() != 0 {
		return nil, fmt.Errorf("cost: calibration decode: %d trailing bytes", d.r.Len())
	}
	return cal, nil
}

// Replace swaps this calibrator's state for the decoded one's — how a
// restarted service rehydrates a live (already-shared) calibrator from
// its persisted snapshot without re-plumbing pointers.
func (c *Calibrator) Replace(from *Calibrator) {
	if c == nil || from == nil || c == from {
		return
	}
	from.mu.RLock()
	cfg, folds := from.cfg, from.folds
	costM := make(map[cellKey]*cell, len(from.cost))
	for k, ce := range from.cost {
		cp := *ce
		costM[k] = &cp
	}
	cardM := make(map[string]*cell, len(from.card))
	for k, ce := range from.card {
		cp := *ce
		cardM[k] = &cp
	}
	from.mu.RUnlock()
	c.mu.Lock()
	c.cfg, c.folds, c.cost, c.card = cfg, folds, costM, cardM
	c.mu.Unlock()
}
