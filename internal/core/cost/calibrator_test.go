package cost

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

func obs(kind, platform string, est, act time.Duration) AtomObs {
	return AtomObs{Kind: kind, Platform: platform, Estimated: est, Actual: act}
}

// Property: under a constant observed ratio, the factor converges
// toward that ratio and the log-distance to it never increases.
func TestCalibratorMonotoneConvergence(t *testing.T) {
	for _, ratio := range []float64{4.0, 0.25, 1.5, 1.0} {
		cal := NewCalibrator(CalibratorConfig{MinSamples: 1})
		target := ratio
		if target > DefaultMaxFactor {
			target = DefaultMaxFactor
		}
		if target < DefaultMinFactor {
			target = DefaultMinFactor
		}
		prev := math.Abs(math.Log(cal.CostFactor("Map", "java")) - math.Log(target))
		for i := 0; i < 50; i++ {
			est := 100 * time.Millisecond
			cal.Fold([]AtomObs{obs("Map", "java", est, time.Duration(float64(est)*ratio))}, nil)
			f := cal.CostFactor("Map", "java")
			dist := math.Abs(math.Log(f) - math.Log(target))
			if dist > prev+1e-9 {
				t.Fatalf("ratio %v step %d: log-distance grew %v -> %v (factor %v)", ratio, i, prev, dist, f)
			}
			prev = dist
		}
		if f := cal.CostFactor("Map", "java"); math.Abs(math.Log(f)-math.Log(target)) > 0.05 {
			t.Fatalf("ratio %v: factor %v did not converge to %v", ratio, f, target)
		}
	}
}

// Property: decay favors recent traffic — after the workload shifts
// from ratio a to ratio b, the factor ends closer to b than to a.
func TestCalibratorDecayTracksRecentRatio(t *testing.T) {
	cal := NewCalibrator(CalibratorConfig{Decay: 0.5, MinSamples: 1})
	est := time.Second
	for i := 0; i < 20; i++ {
		cal.Fold([]AtomObs{obs("Join", "spark", est, 8*est)}, nil)
	}
	for i := 0; i < 20; i++ {
		cal.Fold([]AtomObs{obs("Join", "spark", est, est/8)}, nil)
	}
	f := cal.CostFactor("Join", "spark")
	if math.Abs(math.Log(f)-math.Log(1.0/8)) > math.Abs(math.Log(f)-math.Log(8.0)) {
		t.Fatalf("factor %v closer to the stale ratio 8 than the recent 1/8", f)
	}
}

// Property: whatever is folded — including adversarial values — every
// factor stays a positive, finite number within the configured clamp.
func TestCalibratorFactorAlwaysSafe(t *testing.T) {
	cal := NewCalibrator(CalibratorConfig{MinSamples: 1})
	rng := rand.New(rand.NewSource(7))
	hostile := []AtomObs{
		obs("Map", "java", 0, time.Second),
		obs("Map", "java", time.Second, 0),
		obs("Map", "java", -time.Second, time.Second),
		obs("Map", "java", time.Second, -time.Second),
		obs("", "java", time.Second, time.Second),
		obs("Map", "", time.Second, time.Second),
		obs("Map", "java", 1, time.Duration(math.MaxInt64)),
		obs("Map", "java", time.Duration(math.MaxInt64), 1),
	}
	cal.Fold(hostile, []CardObs{
		{Kind: "Filter", Estimated: 0, Actual: 100},
		{Kind: "Filter", Estimated: 100, Actual: 0},
		{Kind: "Filter", Estimated: -5, Actual: -5},
		{Kind: "", Estimated: 10, Actual: 10},
		{Kind: "Filter", Estimated: 1, Actual: math.MaxInt64},
	})
	for i := 0; i < 500; i++ {
		cal.Fold([]AtomObs{obs("Map", "java",
			time.Duration(rng.Int63n(int64(time.Hour))+1),
			time.Duration(rng.Int63n(int64(time.Hour))+1))}, nil)
		for _, f := range []float64{
			cal.CostFactor("Map", "java"),
			cal.CostFactor("Filter", "nope"),
			cal.CardFactor("Filter"),
			cal.CardFactor("unseen"),
		} {
			if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
				t.Fatalf("unsafe factor %v", f)
			}
			if f < DefaultMinFactor-1e-12 || f > DefaultMaxFactor+1e-12 {
				t.Fatalf("factor %v outside clamp [%v, %v]", f, DefaultMinFactor, DefaultMaxFactor)
			}
		}
	}
}

func TestCalibratorEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		cfg   CalibratorConfig
		atoms []AtomObs
		cards []CardObs
		kind  string
		plat  string
		want  float64 // 0 means "just assert safe", else exact expectation
	}{
		{
			name:  "zero actual carries no signal",
			cfg:   CalibratorConfig{MinSamples: 1},
			atoms: []AtomObs{obs("Map", "java", time.Second, 0)},
			kind:  "Map", plat: "java", want: 1,
		},
		{
			name:  "zero estimate carries no signal",
			cfg:   CalibratorConfig{MinSamples: 1},
			atoms: []AtomObs{obs("Map", "java", 0, time.Second)},
			kind:  "Map", plat: "java", want: 1,
		},
		{
			name:  "single sample below default guard",
			atoms: []AtomObs{obs("Map", "java", time.Second, 10*time.Second)},
			kind:  "Map", plat: "java", want: 1,
		},
		{
			name: "single sample with guard of one applies",
			cfg:  CalibratorConfig{MinSamples: 1},
			atoms: []AtomObs{
				obs("Map", "java", time.Second, 4*time.Second),
			},
			kind: "Map", plat: "java", want: 4,
		},
		{
			name: "conflicting platforms stay independent",
			cfg:  CalibratorConfig{MinSamples: 1},
			atoms: []AtomObs{
				obs("Map", "java", time.Second, 8*time.Second),
				obs("Map", "spark", 8*time.Second, time.Second),
			},
			kind: "Map", plat: "java", want: 8,
		},
		{
			name: "extreme ratio clamps to max factor",
			cfg:  CalibratorConfig{MinSamples: 1},
			atoms: []AtomObs{
				obs("Map", "java", 1, time.Duration(math.MaxInt64)),
			},
			kind: "Map", plat: "java", want: DefaultMaxFactor,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cal := NewCalibrator(tc.cfg)
			cal.Fold(tc.atoms, tc.cards)
			f := cal.CostFactor(tc.kind, tc.plat)
			if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
				t.Fatalf("unsafe factor %v", f)
			}
			if tc.want != 0 && math.Abs(f-tc.want) > 1e-9 {
				t.Fatalf("factor = %v, want %v", f, tc.want)
			}
		})
	}
}

func TestCalibratorNilReceiverSafe(t *testing.T) {
	var cal *Calibrator
	cal.Fold([]AtomObs{obs("Map", "java", 1, 2)}, []CardObs{{Kind: "Map", Estimated: 1, Actual: 2}})
	if f := cal.CostFactor("Map", "java"); f != 1 {
		t.Fatalf("nil CostFactor = %v, want 1", f)
	}
	if f := cal.CardFactor("Map"); f != 1 {
		t.Fatalf("nil CardFactor = %v, want 1", f)
	}
	if n := cal.Folds(); n != 0 {
		t.Fatalf("nil Folds = %d, want 0", n)
	}
	if s := cal.Snapshot(); s != nil {
		t.Fatalf("nil Snapshot = %v, want nil", s)
	}
	cal.Replace(NewCalibrator(CalibratorConfig{}))
}

func TestCalibratorCardFactorGuard(t *testing.T) {
	cal := NewCalibrator(CalibratorConfig{MinSamples: 3})
	for i := 0; i < 2; i++ {
		cal.Fold(nil, []CardObs{{Kind: "Filter", Estimated: 100, Actual: 400}})
	}
	if f := cal.CardFactor("Filter"); f != 1 {
		t.Fatalf("guarded CardFactor = %v, want 1", f)
	}
	cal.Fold(nil, []CardObs{{Kind: "Filter", Estimated: 100, Actual: 400}})
	if f := cal.CardFactor("Filter"); math.Abs(f-4) > 1e-9 {
		t.Fatalf("warm CardFactor = %v, want 4", f)
	}
}

func warmedCalibrator(t *testing.T) *Calibrator {
	t.Helper()
	cal := NewCalibrator(CalibratorConfig{Decay: 0.7, MinSamples: 2, MinFactor: 0.1, MaxFactor: 10})
	rng := rand.New(rand.NewSource(11))
	kinds := []string{"Map", "Filter", "ReduceBy", "Join", "Sort"}
	plats := []string{"java", "sparksim", "relational"}
	for i := 0; i < 40; i++ {
		k, p := kinds[rng.Intn(len(kinds))], plats[rng.Intn(len(plats))]
		est := time.Duration(rng.Int63n(int64(time.Second)) + 1)
		act := time.Duration(rng.Int63n(int64(time.Second)) + 1)
		cal.Fold([]AtomObs{obs(k, p, est, act)},
			[]CardObs{{Kind: k, Estimated: rng.Int63n(1000) + 1, Actual: rng.Int63n(1000) + 1}})
	}
	return cal
}

func TestCalibratorCodecRoundTrip(t *testing.T) {
	cal := warmedCalibrator(t)
	enc := cal.Encode()
	dec, err := DecodeCalibrator(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(cal.Snapshot(), dec.Snapshot()) {
		t.Fatalf("snapshot mismatch after round trip:\n%+v\nvs\n%+v", cal.Snapshot(), dec.Snapshot())
	}
	if cal.Folds() != dec.Folds() {
		t.Fatalf("folds %d != %d", cal.Folds(), dec.Folds())
	}
	re := dec.Encode()
	if !bytes.Equal(enc, re) {
		t.Fatalf("encode not deterministic across decode: %d vs %d bytes", len(enc), len(re))
	}
	// An empty calibrator round-trips too.
	empty := NewCalibrator(CalibratorConfig{})
	dec2, err := DecodeCalibrator(empty.Encode())
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if got := dec2.CostFactor("Map", "java"); got != 1 {
		t.Fatalf("empty decoded factor = %v", got)
	}
}

func TestCalibratorDecodeRejectsCorruption(t *testing.T) {
	valid := warmedCalibrator(t).Encode()
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOCAL\x01rest"),
		"bad version": append(append([]byte{}, "RHCAL\xff"...), valid[6:]...),
		"truncated":   valid[:len(valid)/2],
		"trailing":    append(append([]byte{}, valid...), 0),
	}
	// Non-finite config float.
	nan := append([]byte{}, valid...)
	for i := 6; i < 14; i++ {
		nan[i] = 0xff
	}
	cases["nan config"] = nan
	for name, b := range cases {
		if _, err := DecodeCalibrator(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestCalibratorReplace(t *testing.T) {
	shared := NewCalibrator(CalibratorConfig{MinSamples: 1})
	shared.Fold([]AtomObs{obs("Map", "java", time.Second, 2*time.Second)}, nil)
	warmed := warmedCalibrator(t)
	shared.Replace(warmed)
	if !reflect.DeepEqual(shared.Snapshot(), warmed.Snapshot()) {
		t.Fatal("Replace did not adopt source state")
	}
	// Replaced state is a deep copy: folding into the source must not
	// leak into the destination.
	before := shared.CostFactor("Map", "java")
	for i := 0; i < 10; i++ {
		warmed.Fold([]AtomObs{obs("Map", "java", time.Second, 9*time.Second)}, nil)
	}
	if got := shared.CostFactor("Map", "java"); got != before {
		t.Fatalf("Replace aliased cell state: %v -> %v", before, got)
	}
}

// -race stress: concurrent folds (runs completing) while readers (the
// optimizer pricing plans) pull factors and snapshots.
func TestCalibratorConcurrentFoldAndRead(t *testing.T) {
	cal := NewCalibrator(CalibratorConfig{MinSamples: 1})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				cal.Fold([]AtomObs{obs("Map", "java",
					time.Duration(rng.Int63n(int64(time.Second))+1),
					time.Duration(rng.Int63n(int64(time.Second))+1))},
					[]CardObs{{Kind: "Map", Estimated: rng.Int63n(100) + 1, Actual: rng.Int63n(100) + 1}})
			}
		}(int64(w))
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if f := cal.CostFactor("Map", "java"); math.IsNaN(f) || f <= 0 {
					t.Errorf("unsafe factor under concurrency: %v", f)
					return
				}
				cal.CardFactor("Map")
				cal.Snapshot()
				cal.Encode()
			}
		}()
	}
	// Wait for writers, then release readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
	if cal.Folds() != 4*300 {
		t.Fatalf("folds = %d, want %d", cal.Folds(), 4*300)
	}
}

func TestCalibratorConfigDefaults(t *testing.T) {
	cfg := CalibratorConfig{}.withDefaults()
	if cfg.Decay != DefaultDecay || cfg.MinSamples != DefaultMinSamples ||
		cfg.MinFactor != DefaultMinFactor || cfg.MaxFactor != DefaultMaxFactor {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	inv := CalibratorConfig{Decay: 2, MinSamples: -1, MinFactor: -3, MaxFactor: math.NaN()}.withDefaults()
	if inv.Decay != DefaultDecay || inv.MinSamples != 1 ||
		inv.MinFactor != DefaultMinFactor || inv.MaxFactor != DefaultMaxFactor {
		t.Fatalf("invalid config not defaulted: %+v", inv)
	}
	swapped := CalibratorConfig{MinFactor: 8, MaxFactor: 2}.withDefaults()
	if swapped.MinFactor != 2 || swapped.MaxFactor != 8 {
		t.Fatalf("min/max not normalised: %+v", swapped)
	}
}
