package cost

import (
	"testing"
	"time"

	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

func TestCostArithmetic(t *testing.T) {
	a := Cost{CPU: 1 * time.Second, IO: 2 * time.Second, Net: 3 * time.Second, Startup: 4 * time.Second}
	b := Cost{CPU: 10 * time.Millisecond}
	sum := a.Plus(b)
	if sum.CPU != 1010*time.Millisecond || sum.Startup != 4*time.Second {
		t.Errorf("Plus = %v", sum)
	}
	if a.Total() != 10*time.Second {
		t.Errorf("Total = %v", a.Total())
	}
	half := a.Times(0.5)
	if half.IO != time.Second {
		t.Errorf("Times = %v", half)
	}
	if s := a.String(); s == "" {
		t.Error("empty String")
	}
}

func TestModelHelpers(t *testing.T) {
	cm := ConstModel(Cost{CPU: 5})
	if cm(nil, nil, 0).CPU != 5 {
		t.Error("ConstModel broken")
	}
	pr := PerRecord(time.Millisecond, 10*time.Nanosecond, 20*time.Nanosecond)
	c := pr(nil, []int64{100, 50}, 10)
	if c.Startup != time.Millisecond {
		t.Error("PerRecord startup wrong")
	}
	if c.CPU != 150*10*time.Nanosecond+10*20*time.Nanosecond {
		t.Errorf("PerRecord cpu = %v", c.CPU)
	}
}

func physPlan(t *testing.T, build func(b *plan.Builder)) *physical.Plan {
	t.Helper()
	b := plan.NewBuilder("p")
	build(b)
	lp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := physical.FromLogical(lp)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestEstimateLinear(t *testing.T) {
	pp := physPlan(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 10000
		f := b.Filter(s, func(data.Record) (bool, error) { return true, nil })
		f.Selectivity = 0.1
		m := b.Map(f, plan.Identity())
		b.Collect(m)
	})
	est := Estimate(pp)
	cards := make([]int64, len(pp.Ops))
	for i, op := range pp.Ops {
		cards[i] = est.Cards[op.ID]
	}
	want := []int64{10000, 1000, 1000, 1000}
	for i, w := range want {
		if cards[i] != w {
			t.Errorf("card[%d] = %d, want %d", i, cards[i], w)
		}
	}
	if est.Bytes(pp.Ops[0].ID) != 10000*DefaultRecBytes {
		t.Error("Bytes estimate wrong")
	}
}

func TestEstimateDefaultsAndKinds(t *testing.T) {
	pp := physPlan(t, func(b *plan.Builder) {
		l := b.Source("l", plan.Collection(nil)) // no hint → default card
		r := b.Source("r", plan.Collection(nil))
		r.CardHint = 200
		j := b.Join(l, r, plan.FieldKey(0), plan.FieldKey(0))
		g := b.ReduceByKey(j, plan.FieldKey(0), plan.SumField(0))
		g.DistinctKeys = 7
		c := b.Count(g)
		b.Collect(c)
	})
	est := Estimate(pp)
	get := func(kind plan.OpKind) int64 {
		for _, op := range pp.Ops {
			if op.Kind() == kind {
				return est.Cards[op.ID]
			}
		}
		t.Fatalf("no %v op", kind)
		return 0
	}
	if get(plan.KindSource) == 0 {
		t.Error("default source card is 0")
	}
	if get(plan.KindJoin) != DefaultSourceCard { // max(1000, 200)
		t.Errorf("join card = %d", get(plan.KindJoin))
	}
	if get(plan.KindReduceByKey) != 7 {
		t.Errorf("reducebykey card = %d", get(plan.KindReduceByKey))
	}
	if get(plan.KindCount) != 1 {
		t.Errorf("count card = %d", get(plan.KindCount))
	}
}

func TestEstimateCartesianAndTheta(t *testing.T) {
	pp := physPlan(t, func(b *plan.Builder) {
		l := b.Source("l", plan.Collection(nil))
		l.CardHint = 100
		r := b.Source("r", plan.Collection(nil))
		r.CardHint = 30
		tj := b.ThetaJoin(l, r, func(a, c data.Record) (bool, error) { return true, nil })
		tj.Selectivity = 0.5
		b.Collect(tj)
	})
	est := Estimate(pp)
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindThetaJoin {
			if est.Cards[op.ID] != 1500 {
				t.Errorf("theta join card = %d, want 1500", est.Cards[op.ID])
			}
		}
	}
}

func TestEstimateLoopBody(t *testing.T) {
	bb := plan.NewBodyBuilder("body")
	in := bb.LoopInput("st")
	m := bb.Map(in, plan.Identity())
	bb.Collect(m)
	body := bb.MustBuild()

	pp := physPlan(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 500
		rep := b.Repeat(s, 3, body)
		b.Collect(rep)
	})
	est := Estimate(pp)
	var repOp *physical.Operator
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindRepeat {
			repOp = op
		}
	}
	if est.Cards[repOp.ID] != 500 {
		t.Errorf("loop output card = %d, want 500 (identity body)", est.Cards[repOp.ID])
	}
	// Body ops estimated with the loop input bound.
	for _, op := range repOp.Body.Ops {
		if op.Kind() == plan.KindLoopInput && est.Cards[op.ID] != 500 {
			t.Errorf("loop input card = %d", est.Cards[op.ID])
		}
	}
}

func TestDistinctSqrtDefault(t *testing.T) {
	pp := physPlan(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 10000
		d := b.Distinct(s)
		b.Collect(d)
	})
	est := Estimate(pp)
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindDistinct {
			if est.Cards[op.ID] != 100 { // √10000
				t.Errorf("distinct card = %d, want 100", est.Cards[op.ID])
			}
		}
	}
}
