package cost

import (
	"math"
	"time"

	"rheem/internal/core/physical"
)

// Additional cost-model shapes shared by platform mapping declarations.
// Platforms compose these instead of writing bespoke arithmetic, so
// their declared costs stay comparable across platforms — a requirement
// for meaningful multi-platform optimization.

// NLogN returns a model charging startup plus perRec·n·log₂(n) CPU over
// the summed input cardinality — the shape of sort-based operators.
func NLogN(startup time.Duration, perRec time.Duration) Model {
	return func(_ *physical.Operator, inCards []int64, outCard int64) Cost {
		var n int64
		for _, c := range inCards {
			n += c
		}
		if n < 0 {
			n = 0 // a corrupt cardinality hint must not yield negative cost
		}
		work := float64(n)
		if n > 1 {
			work = float64(n) * math.Log2(float64(n))
		}
		return Cost{
			Startup: startup,
			CPU:     time.Duration(work * float64(perRec)),
		}
	}
}

// PairQuadratic returns a model charging perPair for every pair of
// left×right input records — nested-loop joins and cartesian products.
// An empty input side yields zero pairs: a join against nothing does no
// pair work (negative cardinalities, meaning "unknown", clamp to 0 too,
// so they can never inflate the product).
func PairQuadratic(startup time.Duration, perPair time.Duration) Model {
	return func(_ *physical.Operator, inCards []int64, _ int64) Cost {
		var pairs int64 = 1
		for _, c := range inCards {
			if c < 0 {
				c = 0
			}
			pairs *= c
		}
		if len(inCards) < 2 {
			pairs = 0
		}
		return Cost{
			Startup: startup,
			CPU:     time.Duration(pairs) * perPair,
		}
	}
}

// Scaled wraps a model, scaling its CPU and IO components — how a
// platform declares being uniformly faster or slower at a class of
// operators (e.g. the relational engine's compiled aggregation vs its
// interpreted per-tuple UDF calls).
func Scaled(m Model, factor float64) Model {
	return func(op *physical.Operator, inCards []int64, outCard int64) Cost {
		c := m(op, inCards, outCard)
		c.CPU = time.Duration(float64(c.CPU) * factor)
		c.IO = time.Duration(float64(c.IO) * factor)
		return c
	}
}

// WithStartup wraps a model, replacing its Startup charge — how a
// distributed platform layers its per-job overhead on a shared shape.
func WithStartup(m Model, startup time.Duration) Model {
	return func(op *physical.Operator, inCards []int64, outCard int64) Cost {
		c := m(op, inCards, outCard)
		c.Startup = startup
		return c
	}
}

// Parallel wraps a model, dividing CPU and IO by a parallelism degree —
// the distributed platforms' speedup on partitionable work.
func Parallel(m Model, degree int) Model {
	if degree < 1 {
		degree = 1
	}
	return func(op *physical.Operator, inCards []int64, outCard int64) Cost {
		c := m(op, inCards, outCard)
		c.CPU /= time.Duration(degree)
		c.IO /= time.Duration(degree)
		return c
	}
}
