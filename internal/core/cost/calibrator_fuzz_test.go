package cost

import (
	"bytes"
	"testing"
	"time"
)

// FuzzCalibrationRoundTrip hardens the persisted calibration codec the
// same way FuzzCodecRoundTrip hardens data.ReadBinary: arbitrary bytes
// must either be rejected with an error or decode into a calibrator
// whose re-encoding is a byte-exact fixpoint (decode→encode→decode
// stable), with preallocation capped so a hostile length prefix cannot
// force a huge allocation, and every decoded factor still safe.
func FuzzCalibrationRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RHCAL"))
	f.Add([]byte("RHCAL\x01"))
	empty := NewCalibrator(CalibratorConfig{})
	f.Add(empty.Encode())
	warm := NewCalibrator(CalibratorConfig{Decay: 0.5, MinSamples: 1})
	warm.Fold(
		[]AtomObs{
			{Kind: "Map", Platform: "java", Estimated: time.Second, Actual: 2 * time.Second},
			{Kind: "Join", Platform: "sparksim", Estimated: time.Minute, Actual: time.Second},
		},
		[]CardObs{{Kind: "Filter", Estimated: 100, Actual: 42}},
	)
	f.Add(warm.Encode())

	f.Fuzz(func(t *testing.T, in []byte) {
		cal, err := DecodeCalibrator(in)
		if err != nil {
			return
		}
		enc := cal.Encode()
		cal2, err := DecodeCalibrator(enc)
		if err != nil {
			t.Fatalf("re-decode of valid encoding failed: %v", err)
		}
		if !bytes.Equal(enc, cal2.Encode()) {
			t.Fatal("decode→encode→decode is not a fixpoint")
		}
		// Whatever decoded, the factor invariants must hold: a cell is
		// either still guarded (exactly 1) or inside the clamp range.
		cfg := cal.Config()
		for _, c := range append(cal.Snapshot().Cost, cal.Snapshot().Card...) {
			inRange := c.Factor >= cfg.MinFactor && c.Factor <= cfg.MaxFactor
			if !(c.Factor > 0) || (c.Factor != 1 && !inRange) {
				t.Fatalf("decoded cell %q/%q has unsafe factor %v", c.Kind, c.Platform, c.Factor)
			}
		}
	})
}
