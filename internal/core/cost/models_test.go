package cost

import (
	"testing"
	"time"
)

func TestNLogN(t *testing.T) {
	m := NLogN(time.Millisecond, 10*time.Nanosecond)
	c := m(nil, []int64{1024}, 0)
	if c.Startup != time.Millisecond {
		t.Error("startup lost")
	}
	want := time.Duration(1024 * 10 * 10) // n·log2(n)·perRec
	if c.CPU != want {
		t.Errorf("CPU = %v, want %v", c.CPU, want)
	}
	// n ≤ 1 degrades to linear, not zero/negative.
	if c := m(nil, []int64{1}, 0); c.CPU != 10*time.Nanosecond {
		t.Errorf("n=1 CPU = %v", c.CPU)
	}
	if c := m(nil, []int64{0}, 0); c.CPU != 0 {
		t.Errorf("n=0 CPU = %v", c.CPU)
	}
}

func TestPairQuadratic(t *testing.T) {
	m := PairQuadratic(0, time.Nanosecond)
	if c := m(nil, []int64{100, 200}, 0); c.CPU != 20000*time.Nanosecond {
		t.Errorf("pairs CPU = %v", c.CPU)
	}
	// Single input: no pairs.
	if c := m(nil, []int64{100}, 0); c.CPU != 0 {
		t.Errorf("unary CPU = %v", c.CPU)
	}
	// Zero-cardinality side contributes factor 1, not 0 (defensive).
	if c := m(nil, []int64{0, 200}, 0); c.CPU != 200*time.Nanosecond {
		t.Errorf("zero-side CPU = %v", c.CPU)
	}
}

func TestScaled(t *testing.T) {
	base := ConstModel(Cost{CPU: 100, IO: 50, Net: 10, Startup: 7})
	c := Scaled(base, 0.5)(nil, nil, 0)
	if c.CPU != 50 || c.IO != 25 {
		t.Errorf("scaled = %+v", c)
	}
	// Net and Startup untouched.
	if c.Net != 10 || c.Startup != 7 {
		t.Errorf("scaled non-compute components = %+v", c)
	}
}

func TestWithStartup(t *testing.T) {
	base := ConstModel(Cost{CPU: 100, Startup: 1})
	c := WithStartup(base, time.Second)(nil, nil, 0)
	if c.Startup != time.Second || c.CPU != 100 {
		t.Errorf("with startup = %+v", c)
	}
}

func TestParallel(t *testing.T) {
	base := ConstModel(Cost{CPU: 800, IO: 80, Net: 8})
	c := Parallel(base, 8)(nil, nil, 0)
	if c.CPU != 100 || c.IO != 10 {
		t.Errorf("parallel = %+v", c)
	}
	if c.Net != 8 {
		t.Error("network wrongly parallelised")
	}
	// Degenerate degree clamps to 1.
	if c := Parallel(base, 0)(nil, nil, 0); c.CPU != 800 {
		t.Errorf("degree 0 = %+v", c)
	}
}
