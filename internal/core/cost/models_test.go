package cost

import (
	"testing"
	"time"
)

func TestNLogN(t *testing.T) {
	m := NLogN(time.Millisecond, 10*time.Nanosecond)
	c := m(nil, []int64{1024}, 0)
	if c.Startup != time.Millisecond {
		t.Error("startup lost")
	}
	want := time.Duration(1024 * 10 * 10) // n·log2(n)·perRec
	if c.CPU != want {
		t.Errorf("CPU = %v, want %v", c.CPU, want)
	}
}

// TestNLogNBoundaries pins the model's small-n behavior: log₂ is only
// applied for n > 1 (log₂(1) = 0 would otherwise zero out real work,
// and log₂(0) is -Inf), empty input costs nothing, and corrupt negative
// cardinality sums clamp to zero rather than going negative.
func TestNLogNBoundaries(t *testing.T) {
	perRec := 10 * time.Nanosecond
	m := NLogN(0, perRec)
	cases := []struct {
		name    string
		inCards []int64
		want    time.Duration
	}{
		{"no inputs", nil, 0},
		{"n=0", []int64{0}, 0},
		{"n=1 charges linear, not n·log2(1)=0", []int64{1}, perRec},
		{"n=1 split across inputs", []int64{1, 0}, perRec},
		{"n=2", []int64{2}, 2 * perRec}, // 2·log2(2) = 2
		{"negative sum clamps to zero", []int64{-5}, 0},
		{"negative side cancels within the sum", []int64{-3, 4}, perRec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := m(nil, tc.inCards, 0)
			if c.CPU != tc.want {
				t.Errorf("CPU = %v, want %v", c.CPU, tc.want)
			}
			if c.CPU < 0 {
				t.Errorf("negative cost %v", c.CPU)
			}
		})
	}
}

// TestShardDiscountBoundaries pins the degenerate shard counts: a
// zero or negative fan-out is "not sharded" and must return the cost
// unchanged — the discount divides by 1 + ShardEfficiency·(n−1), which
// for n ≤ 0 would *inflate* the cost (or flip its sign) if applied.
// Real fan-outs divide CPU and IO by the effective parallelism while
// Net and Startup stay whole.
func TestShardDiscountBoundaries(t *testing.T) {
	base := Cost{CPU: 1700 * time.Millisecond, IO: 340 * time.Millisecond,
		Net: 50 * time.Millisecond, Startup: 20 * time.Millisecond}
	eff := func(n int) float64 { return 1 + ShardEfficiency*float64(n-1) }
	cases := []struct {
		name   string
		shards int
		want   Cost
	}{
		{"negative clamps to unsharded", -1, base},
		{"zero clamps to unsharded", 0, base},
		{"one is unsharded", 1, base},
		{"two divides compute by 1.7", 2, Cost{
			CPU:     time.Duration(float64(base.CPU) / eff(2)),
			IO:      time.Duration(float64(base.IO) / eff(2)),
			Net:     base.Net,
			Startup: base.Startup,
		}},
		{"four divides compute by 3.1", 4, Cost{
			CPU:     time.Duration(float64(base.CPU) / eff(4)),
			IO:      time.Duration(float64(base.IO) / eff(4)),
			Net:     base.Net,
			Startup: base.Startup,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ShardDiscount(base, tc.shards)
			if got != tc.want {
				t.Errorf("ShardDiscount(%v, %d) = %+v, want %+v", base, tc.shards, got, tc.want)
			}
			if got.CPU <= 0 || got.IO <= 0 {
				t.Errorf("discount produced a non-positive compute cost: %+v", got)
			}
		})
	}
}

func TestPairQuadratic(t *testing.T) {
	m := PairQuadratic(0, time.Nanosecond)
	if c := m(nil, []int64{100, 200}, 0); c.CPU != 20000*time.Nanosecond {
		t.Errorf("pairs CPU = %v", c.CPU)
	}
	// Single input: no pairs.
	if c := m(nil, []int64{100}, 0); c.CPU != 0 {
		t.Errorf("unary CPU = %v", c.CPU)
	}
}

// TestPairQuadraticEmptySide is the regression test for the
// zero-cardinality bug: an empty side used to contribute factor 1 to
// the product, so joining 0×200 records was priced like scanning 200 —
// enough to flip a platform choice on empty-input plans. An empty side
// must zero the pair count.
func TestPairQuadraticEmptySide(t *testing.T) {
	m := PairQuadratic(time.Millisecond, time.Nanosecond)
	cases := []struct {
		name    string
		inCards []int64
		want    time.Duration
	}{
		{"empty left", []int64{0, 200}, 0},
		{"empty right", []int64{200, 0}, 0},
		{"both empty", []int64{0, 0}, 0},
		{"negative (unknown) side clamps to empty", []int64{-1, 200}, 0},
		{"non-empty control", []int64{3, 4}, 12 * time.Nanosecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := m(nil, tc.inCards, 0)
			if c.CPU != tc.want {
				t.Errorf("CPU = %v, want %v", c.CPU, tc.want)
			}
			if c.Startup != time.Millisecond {
				t.Errorf("startup = %v", c.Startup)
			}
		})
	}
}

func TestScaled(t *testing.T) {
	base := ConstModel(Cost{CPU: 100, IO: 50, Net: 10, Startup: 7})
	c := Scaled(base, 0.5)(nil, nil, 0)
	if c.CPU != 50 || c.IO != 25 {
		t.Errorf("scaled = %+v", c)
	}
	// Net and Startup untouched.
	if c.Net != 10 || c.Startup != 7 {
		t.Errorf("scaled non-compute components = %+v", c)
	}
}

func TestWithStartup(t *testing.T) {
	base := ConstModel(Cost{CPU: 100, Startup: 1})
	c := WithStartup(base, time.Second)(nil, nil, 0)
	if c.Startup != time.Second || c.CPU != 100 {
		t.Errorf("with startup = %+v", c)
	}
}

func TestParallel(t *testing.T) {
	base := ConstModel(Cost{CPU: 800, IO: 80, Net: 8})
	c := Parallel(base, 8)(nil, nil, 0)
	if c.CPU != 100 || c.IO != 10 {
		t.Errorf("parallel = %+v", c)
	}
	if c.Net != 8 {
		t.Error("network wrongly parallelised")
	}
	// Degenerate degree clamps to 1.
	if c := Parallel(base, 0)(nil, nil, 0); c.CPU != 800 {
		t.Errorf("degree 0 = %+v", c)
	}
}
