// Package cost implements the pluggable cost machinery of RHEEM's
// multi-platform task optimizer (paper §4.2). The paper requires that
// "rules and cost models [be] plugins and not hard-coded as in
// traditional database optimizers": here a cost model is a plain
// function value attached to a declarative operator mapping, and the
// optimizer only ever adds up the Cost vectors those plugins return —
// it knows nothing about any platform's internals.
package cost

import (
	"fmt"
	"math"
	"time"

	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
)

// Cost is the optimizer's currency: estimated time split by resource.
// Startup captures fixed per-job charges (e.g. Spark job submission),
// which is what makes small inputs favour the single-node engine —
// the effect Figure 2 of the paper measures.
type Cost struct {
	CPU     time.Duration
	IO      time.Duration
	Net     time.Duration
	Startup time.Duration
}

// Plus returns the component-wise sum.
func (c Cost) Plus(o Cost) Cost {
	return Cost{
		CPU:     c.CPU + o.CPU,
		IO:      c.IO + o.IO,
		Net:     c.Net + o.Net,
		Startup: c.Startup + o.Startup,
	}
}

// Times scales every component.
func (c Cost) Times(k float64) Cost {
	scale := func(d time.Duration) time.Duration { return time.Duration(float64(d) * k) }
	return Cost{CPU: scale(c.CPU), IO: scale(c.IO), Net: scale(c.Net), Startup: scale(c.Startup)}
}

// Total collapses the vector to a single optimization objective.
func (c Cost) Total() time.Duration { return c.CPU + c.IO + c.Net + c.Startup }

// String renders the cost compactly.
func (c Cost) String() string {
	return fmt.Sprintf("total=%v (cpu=%v io=%v net=%v startup=%v)",
		c.Total(), c.CPU, c.IO, c.Net, c.Startup)
}

// ShardEfficiency is the assumed per-shard parallel efficiency of
// intra-atom sharding: n shards deliver 1 + ShardEfficiency·(n−1)
// effective parallelism, not n — split/merge work and memory-bandwidth
// contention eat the rest. Calibrated against the E11 experiment.
const ShardEfficiency = 0.7

// ShardDiscount prices running an operator fanned out over n shards:
// the compute components (CPU, IO) divide by the effective parallelism
// while Net and Startup — movement and per-job charges that sharding
// does not parallelize — stay whole. The optimizer applies it to
// shardable operators on non-distributed platforms, which is how
// sharding can flip a platform assignment: a single-node engine with
// shards behaves like a small cluster without the job overhead.
func ShardDiscount(c Cost, shards int) Cost {
	if shards <= 1 {
		return c
	}
	eff := 1 + ShardEfficiency*float64(shards-1)
	c.CPU = time.Duration(float64(c.CPU) / eff)
	c.IO = time.Duration(float64(c.IO) / eff)
	return c
}

// Model is the plugin signature a mapping attaches: estimate the cost
// of running op on the mapping's platform, given estimated input and
// output cardinalities. Models are pure functions of their arguments
// so plans can be costed without touching any platform.
type Model func(op *physical.Operator, inCards []int64, outCard int64) Cost

// ConstModel returns a Model charging a fixed cost regardless of
// cardinalities — useful in tests and for trivial operators.
func ConstModel(c Cost) Model {
	return func(*physical.Operator, []int64, int64) Cost { return c }
}

// PerRecord returns a Model charging startup plus a CPU cost per input
// and output record — the workhorse shape for single-node operators.
func PerRecord(startup time.Duration, perIn, perOut time.Duration) Model {
	return func(_ *physical.Operator, inCards []int64, outCard int64) Cost {
		var in int64
		for _, c := range inCards {
			in += c
		}
		return Cost{
			Startup: startup,
			CPU:     time.Duration(in)*perIn + time.Duration(outCard)*perOut,
		}
	}
}

// Estimates holds per-operator cardinality estimates for one physical
// plan (keyed by physical operator ID), plus average record width used
// to turn cardinalities into bytes for movement costing.
type Estimates struct {
	Cards    map[int]int64
	RecBytes int64 // assumed average record footprint

	overrides map[int]int64
	cal       *Calibrator
}

// Bytes estimates the byte volume flowing out of op.
func (e *Estimates) Bytes(opID int) int64 {
	return e.Cards[opID] * e.RecBytes
}

// DefaultSourceCard is assumed when a source provides no CardHint.
const DefaultSourceCard = 1000

// DefaultRecBytes is the assumed record footprint when no hint exists.
const DefaultRecBytes = 64

// Estimate walks the physical plan in topological order and derives a
// cardinality estimate per operator from source hints and standard
// selectivity rules. Loop bodies are estimated with the loop input
// bound to the loop operator's input cardinality.
func Estimate(p *physical.Plan) *Estimates {
	return EstimateWith(p, nil)
}

// EstimateWith is Estimate with per-operator overrides: where an
// observed cardinality is known (the executor's audit), it replaces
// the rule-derived estimate, and downstream operators are estimated
// from the corrected value. This is the statistics-feedback half of
// adaptive re-optimization.
func EstimateWith(p *physical.Plan, overrides map[int]int64) *Estimates {
	return EstimateCalibrated(p, overrides, nil)
}

// EstimateCalibrated is EstimateWith with a calibrator: each rule-
// derived cardinality is scaled by the calibrator's learned per-kind
// correction before flowing downstream. Observed overrides are applied
// after (and never scaled — they are measurements, not estimates). A
// nil calibrator degrades to the uncalibrated rules.
func EstimateCalibrated(p *physical.Plan, overrides map[int]int64, cal *Calibrator) *Estimates {
	est := &Estimates{Cards: make(map[int]int64, len(p.Ops)), RecBytes: DefaultRecBytes}
	est.overrides = overrides
	est.cal = cal
	estimateInto(p, est, -1)
	return est
}

// estimateInto fills est.Cards for plan p; loopInputCard is the
// cardinality bound to a body plan's LoopInput (-1 for top level).
func estimateInto(p *physical.Plan, est *Estimates, loopInputCard int64) {
	for _, op := range p.Ops {
		lop := op.Logical
		in := make([]int64, len(op.Inputs))
		for i, pin := range op.Inputs {
			in[i] = est.Cards[pin.ID]
		}
		var card int64
		switch lop.Kind() {
		case plan.KindSource:
			card = lop.CardHint
			if card <= 0 {
				card = DefaultSourceCard
			}
		case plan.KindLoopInput:
			card = loopInputCard
			if card < 0 {
				card = DefaultSourceCard
			}
		case plan.KindMap, plan.KindSort, plan.KindSink:
			card = in[0]
		case plan.KindFlatMap:
			fan := lop.GroupFanout
			if fan <= 0 {
				fan = 2
			}
			card = int64(float64(in[0]) * fan)
		case plan.KindFilter:
			sel := lop.Selectivity
			if sel <= 0 {
				sel = 0.5
			}
			card = int64(float64(in[0]) * sel)
		case plan.KindGroupBy:
			d := distinctEstimate(lop, in[0])
			if lop.GroupFanout > 0 {
				card = int64(float64(in[0]) * lop.GroupFanout)
			} else {
				card = d
			}
		case plan.KindReduceByKey:
			card = distinctEstimate(lop, in[0])
		case plan.KindDistinct:
			card = distinctEstimate(lop, in[0])
		case plan.KindReduce, plan.KindCount:
			card = 1
		case plan.KindUnion:
			card = in[0] + in[1]
		case plan.KindJoin:
			// Foreign-key-ish default: the larger side survives.
			card = max64(in[0], in[1])
		case plan.KindThetaJoin:
			sel := lop.Selectivity
			if sel <= 0 {
				sel = 0.25
			}
			card = int64(float64(in[0]) * float64(in[1]) * sel)
		case plan.KindCartesian:
			card = in[0] * in[1]
		case plan.KindSample:
			card = min64(int64(lop.N), in[0])
		case plan.KindRepeat, plan.KindDoWhile:
			estimateInto(op.Body, est, in[0])
			card = est.Cards[op.Body.SinkOp.ID]
		default:
			card = in[0]
		}
		if card < 0 {
			card = 0
		}
		// Calibration scales the rule-derived estimate only; sources keep
		// their hints (their observed ratio is ~1 anyway) and overrides
		// below stay untouched — they are measurements.
		if est.cal != nil && card > 0 {
			switch lop.Kind() {
			case plan.KindSource, plan.KindLoopInput, plan.KindRepeat, plan.KindDoWhile:
				// Loop cards come from their body's (already calibrated)
				// sink estimate; scaling again would double-correct.
			default:
				card = int64(float64(card) * est.cal.CardFactor(lop.Kind().String()))
			}
		}
		if ov, ok := est.overrides[op.ID]; ok {
			card = ov
		}
		est.Cards[op.ID] = card
	}
}

func distinctEstimate(lop *plan.Operator, in int64) int64 {
	if lop.DistinctKeys > 0 {
		return min64(lop.DistinctKeys, in)
	}
	if in <= 1 {
		return in
	}
	// Without statistics assume √n distinct keys, the classic guess.
	return int64(math.Sqrt(float64(in)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
