// Package cleaning is BIGDANSING, the data cleaning application the
// paper builds on RHEEM as its proof of concept (§5.1). Data quality
// rules are modelled with the paper's five logical operators:
//
//	Scope   isolates the attributes a rule needs,
//	Block   groups records that could violate the rule together,
//	Iterate enumerates candidate record pairs within a block,
//	Detect  decides whether a candidate violates the rule,
//	GenFix  proposes possible repairs for a violation.
//
// Rules are declarative values (FD, DenialConstraint, UDFRule); the
// Detector lowers them onto RHEEM logical plans. Equality rules run
// through the blocked Scope→Block→Iterate→Detect pipeline (GroupBy);
// inequality rules run through a self theta-join whose declarative
// conditions let the optimizer pick the IEJoin physical operator — the
// paper's worked extensibility example. Baselines (the monolithic
// single-Detect UDF and the SQL-style self-join) live in baselines.go
// and reproduce the slow sides of Figure 3.
package cleaning

import (
	"fmt"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// Cell addresses one attribute of one tuple.
type Cell struct {
	Tuple int64 // tuple id (the dataset's id attribute)
	Field int   // field index in the dataset schema
}

// Fix is one proposed repair: write To into Cell.
type Fix struct {
	Cell Cell
	To   data.Value
}

// Violation records that a rule flagged a tuple pair (Right = -1 for
// single-tuple rules).
type Violation struct {
	Rule  string
	Left  int64
	Right int64
}

// Rule is a data quality rule in the five-operator model. Scoped
// records must carry the tuple id in field 0; the remaining fields are
// rule-defined.
type Rule interface {
	// Name identifies the rule in violations.
	Name() string
	// Scope projects the fields the rule needs (id first); records the
	// rule can never flag may be dropped (ok=false).
	Scope(r data.Record) (scoped data.Record, ok bool)
	// Block returns the blocking key: only records sharing a key can
	// violate the rule together. Rules that cannot block (inequality
	// rules) return a constant.
	Block(scoped data.Record) data.Value
	// Detect reports whether the ordered pair of scoped records
	// violates the rule.
	Detect(a, b data.Record) bool
	// Conditions returns declarative inequality conditions over scoped
	// records (field indices refer to the scoped layout); non-empty
	// conditions make the rule eligible for IEJoin-based detection.
	Conditions() []plan.IECondition
	// GenFix proposes repairs for a violating scoped pair.
	GenFix(a, b data.Record) []Fix
}

// FD is a functional dependency LHS → RHS over dataset field indices,
// e.g. zip → city. Clean data has, for every LHS value, a single RHS
// value.
type FD struct {
	RuleName string
	ID       int   // field index of the tuple id
	LHS      []int // determinant fields
	RHS      []int // dependent fields
}

// Name implements Rule.
func (f FD) Name() string { return f.RuleName }

// Scope implements Rule: (id, lhs..., rhs...).
func (f FD) Scope(r data.Record) (data.Record, bool) {
	idx := make([]int, 0, 1+len(f.LHS)+len(f.RHS))
	idx = append(idx, f.ID)
	idx = append(idx, f.LHS...)
	idx = append(idx, f.RHS...)
	return r.Project(idx...), true
}

// Block implements Rule: records agreeing on LHS share a block. For a
// single determinant the value itself is the key; composites hash.
func (f FD) Block(scoped data.Record) data.Value {
	if len(f.LHS) == 1 {
		return scoped.Field(1)
	}
	h := uint64(0)
	for i := range f.LHS {
		h = h*1099511628211 ^ data.Hash(scoped.Field(1+i), 0)
	}
	return data.Int(int64(h))
}

// Detect implements Rule: same LHS (blocks may merge under hash
// collisions, so LHS is rechecked), different RHS.
func (f FD) Detect(a, b data.Record) bool {
	for i := range f.LHS {
		if !data.Equal(a.Field(1+i), b.Field(1+i)) {
			return false
		}
	}
	off := 1 + len(f.LHS)
	for i := range f.RHS {
		if !data.Equal(a.Field(off+i), b.Field(off+i)) {
			return true
		}
	}
	return false
}

// Conditions implements Rule: FDs are equality rules.
func (FD) Conditions() []plan.IECondition { return nil }

// GenFix implements Rule: equate each differing dependent cell, in both
// directions — the repair algorithm picks by majority.
func (f FD) GenFix(a, b data.Record) []Fix {
	off := 1 + len(f.LHS)
	var fixes []Fix
	for i, rhsField := range f.RHS {
		av, bv := a.Field(off+i), b.Field(off+i)
		if data.Equal(av, bv) {
			continue
		}
		fixes = append(fixes,
			Fix{Cell: Cell{Tuple: a.Field(0).Int(), Field: rhsField}, To: bv},
			Fix{Cell: Cell{Tuple: b.Field(0).Int(), Field: rhsField}, To: av},
		)
	}
	return fixes
}

// Pred is one predicate of a denial constraint, comparing a field of
// the first tuple with a field of the second (dataset field indices).
type Pred struct {
	LeftField  int
	Op         plan.CompareOp
	RightField int
}

// DenialConstraint forbids tuple pairs satisfying all predicates, e.g.
// ¬(t1.salary > t2.salary ∧ t1.rate < t2.rate). Inequality predicates
// make it IEJoin-eligible.
type DenialConstraint struct {
	RuleName string
	ID       int // field index of the tuple id
	Preds    []Pred

	// FixField, when ≥ 0, names the dataset field GenFix adjusts on
	// the left tuple (e.g. the rate); -1 proposes no fixes.
	FixField int
}

// scopedFields returns the dataset fields the constraint touches, in
// scoped order (stable, deduplicated).
func (d DenialConstraint) scopedFields() []int {
	seen := map[int]bool{}
	var out []int
	add := func(f int) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, p := range d.Preds {
		add(p.LeftField)
		add(p.RightField)
	}
	if d.FixField >= 0 {
		add(d.FixField)
	}
	return out
}

func (d DenialConstraint) scopedIndex(datasetField int) int {
	for i, f := range d.scopedFields() {
		if f == datasetField {
			return 1 + i
		}
	}
	return -1
}

// Name implements Rule.
func (d DenialConstraint) Name() string { return d.RuleName }

// Scope implements Rule: (id, touched fields...).
func (d DenialConstraint) Scope(r data.Record) (data.Record, bool) {
	idx := append([]int{d.ID}, d.scopedFields()...)
	return r.Project(idx...), true
}

// Block implements Rule: inequality constraints cannot block, so all
// records share one block.
func (DenialConstraint) Block(data.Record) data.Value { return data.Int(0) }

// Detect implements Rule.
func (d DenialConstraint) Detect(a, b data.Record) bool {
	if a.Field(0).Int() == b.Field(0).Int() {
		return false // a tuple does not violate with itself
	}
	for _, p := range d.Preds {
		li, ri := d.scopedIndex(p.LeftField), d.scopedIndex(p.RightField)
		if !p.Op.Eval(a.Field(li), b.Field(ri)) {
			return false
		}
	}
	return true
}

// Conditions implements Rule: the predicates over scoped indices, the
// declarative form the optimizer maps to IEJoin.
func (d DenialConstraint) Conditions() []plan.IECondition {
	out := make([]plan.IECondition, len(d.Preds))
	for i, p := range d.Preds {
		out[i] = plan.IECondition{
			LeftField:  d.scopedIndex(p.LeftField),
			Op:         p.Op,
			RightField: d.scopedIndex(p.RightField),
		}
	}
	return out
}

// GenFix implements Rule: pull the left tuple's fix field to the right
// tuple's value, breaking the predicate conjunction minimally.
func (d DenialConstraint) GenFix(a, b data.Record) []Fix {
	if d.FixField < 0 {
		return nil
	}
	si := d.scopedIndex(d.FixField)
	return []Fix{{
		Cell: Cell{Tuple: a.Field(0).Int(), Field: d.FixField},
		To:   b.Field(si),
	}}
}

// UDFRule wraps arbitrary user functions in the five-operator model —
// the escape hatch for rules beyond FDs and DCs.
type UDFRule struct {
	RuleName  string
	ScopeFn   func(data.Record) (data.Record, bool)
	BlockFn   func(data.Record) data.Value
	DetectFn  func(a, b data.Record) bool
	GenFixFn  func(a, b data.Record) []Fix
	CondsList []plan.IECondition
}

// Name implements Rule.
func (u UDFRule) Name() string { return u.RuleName }

// Scope implements Rule.
func (u UDFRule) Scope(r data.Record) (data.Record, bool) {
	if u.ScopeFn == nil {
		return r, true
	}
	return u.ScopeFn(r)
}

// Block implements Rule.
func (u UDFRule) Block(r data.Record) data.Value {
	if u.BlockFn == nil {
		return data.Int(0)
	}
	return u.BlockFn(r)
}

// Detect implements Rule.
func (u UDFRule) Detect(a, b data.Record) bool { return u.DetectFn != nil && u.DetectFn(a, b) }

// Conditions implements Rule.
func (u UDFRule) Conditions() []plan.IECondition { return u.CondsList }

// GenFix implements Rule.
func (u UDFRule) GenFix(a, b data.Record) []Fix {
	if u.GenFixFn == nil {
		return nil
	}
	return u.GenFixFn(a, b)
}

// Validate sanity-checks a rule against a schema arity.
func Validate(r Rule, schemaLen int) error {
	switch rule := r.(type) {
	case FD:
		fields := append(append([]int{rule.ID}, rule.LHS...), rule.RHS...)
		for _, f := range fields {
			if f < 0 || f >= schemaLen {
				return fmt.Errorf("cleaning: rule %s references field %d outside schema", r.Name(), f)
			}
		}
		if len(rule.LHS) == 0 || len(rule.RHS) == 0 {
			return fmt.Errorf("cleaning: rule %s needs determinant and dependent fields", r.Name())
		}
	case DenialConstraint:
		if len(rule.Preds) == 0 {
			return fmt.Errorf("cleaning: rule %s has no predicates", r.Name())
		}
		for _, p := range rule.Preds {
			if p.LeftField < 0 || p.LeftField >= schemaLen || p.RightField < 0 || p.RightField >= schemaLen {
				return fmt.Errorf("cleaning: rule %s references a field outside schema", r.Name())
			}
		}
	}
	return nil
}
