package cleaning

import (
	"fmt"

	"rheem"
	"rheem/internal/data"
)

// CleanResult summarises an iterative detect→repair run.
type CleanResult struct {
	Rounds          int
	InitialViolations int
	FinalViolations int
	CellsChanged    int
}

// Clean iterates detection and repair to a fixpoint: detect, repair,
// re-detect, until no violations remain, the violation count stops
// improving, or maxRounds is reached. Repairing one rule can surface
// or create violations of another (a repaired city can collide with a
// state rule, a raised rate can violate against a higher earner), so a
// single repair pass is not enough in general — this is the cleaning
// loop BigDansing systems run in practice.
func Clean(ctx *rheem.Context, dataset []data.Record, rules []Rule, idField, maxRounds int, opts ...rheem.RunOption) ([]data.Record, CleanResult, error) {
	if maxRounds <= 0 {
		maxRounds = 5
	}
	det, err := NewDetector(ctx, rules...)
	if err != nil {
		return nil, CleanResult{}, err
	}
	cur := dataset
	res := CleanResult{}
	prev := -1
	for round := 0; round < maxRounds; round++ {
		violations, _, err := det.Detect(cur, opts...)
		if err != nil {
			return nil, res, fmt.Errorf("cleaning: round %d: %w", round, err)
		}
		if round == 0 {
			res.InitialViolations = len(violations)
		}
		res.FinalViolations = len(violations)
		if len(violations) == 0 {
			return cur, res, nil
		}
		if prev >= 0 && len(violations) >= prev {
			// No progress: stop rather than oscillate.
			return cur, res, nil
		}
		prev = len(violations)
		repaired, stats, err := Repair(cur, violations, rules, idField)
		if err != nil {
			return nil, res, fmt.Errorf("cleaning: round %d repair: %w", round, err)
		}
		res.CellsChanged += stats.CellsChanged
		res.Rounds++
		cur = repaired
	}
	// Report the violation count after the final repair.
	violations, _, err := det.Detect(cur, opts...)
	if err != nil {
		return nil, res, err
	}
	res.FinalViolations = len(violations)
	return cur, res, nil
}
