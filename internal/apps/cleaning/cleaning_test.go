package cleaning

import (
	"testing"

	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

func testCtx(t *testing.T) *rheem.Context {
	t.Helper()
	ctx, err := rheem.NewContext(rheem.Config{
		Spark: sparksim.Config{JobOverhead: 1e5, TaskOverhead: 1e4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// zipCityFD is the canonical tax rule: zip determines city.
func zipCityFD() FD {
	return FD{RuleName: "zip->city", ID: datagen.TaxID,
		LHS: []int{datagen.TaxZip}, RHS: []int{datagen.TaxCity}}
}

// salaryRateDC is the canonical inequality rule: higher salary must not
// have a lower rate.
func salaryRateDC() DenialConstraint {
	return DenialConstraint{RuleName: "salary-rate", ID: datagen.TaxID,
		Preds: []Pred{
			{LeftField: datagen.TaxSalary, Op: plan.Greater, RightField: datagen.TaxSalary},
			{LeftField: datagen.TaxRate, Op: plan.Less, RightField: datagen.TaxRate},
		},
		FixField: datagen.TaxRate,
	}
}

// oracleFD detects zip→city violations by brute force.
func oracleFD(recs []data.Record) map[[2]int64]bool {
	out := map[[2]int64]bool{}
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			a, b := recs[i], recs[j]
			if a.Field(datagen.TaxZip).Str() == b.Field(datagen.TaxZip).Str() &&
				a.Field(datagen.TaxCity).Str() != b.Field(datagen.TaxCity).Str() {
				l, r := a.Field(datagen.TaxID).Int(), b.Field(datagen.TaxID).Int()
				if l > r {
					l, r = r, l
				}
				out[[2]int64{l, r}] = true
			}
		}
	}
	return out
}

func violationSet(vs []Violation) map[[2]int64]bool {
	out := map[[2]int64]bool{}
	for _, v := range vs {
		l, r := v.Left, v.Right
		if l > r {
			l, r = r, l
		}
		out[[2]int64{l, r}] = true
	}
	return out
}

func TestFDDetectionMatchesOracle(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 300, Zips: 20, ErrorRate: 0.1, Seed: 1})
	ctx := testCtx(t)
	d, err := NewDetector(ctx, zipCityFD())
	if err != nil {
		t.Fatal(err)
	}
	vs, rep, err := d.Detect(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleFD(recs)
	got := violationSet(vs)
	if len(want) == 0 {
		t.Fatal("oracle found no violations; bad fixture")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d violations, oracle %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing violation %v", k)
		}
	}
	if rep.Metrics.Jobs < 1 {
		t.Error("no jobs recorded")
	}
}

func TestFDDetectionSameAcrossPlatforms(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 200, Zips: 15, ErrorRate: 0.1, Seed: 2})
	ctx := testCtx(t)
	d, _ := NewDetector(ctx, zipCityFD())
	vj, _, err := d.Detect(recs, rheem.OnPlatform(javaengine.ID))
	if err != nil {
		t.Fatal(err)
	}
	vsSpark, _, err := d.Detect(recs, rheem.OnPlatform(sparksim.ID))
	if err != nil {
		t.Fatal(err)
	}
	a, b := violationSet(vj), violationSet(vsSpark)
	if len(a) != len(b) {
		t.Fatalf("java %d vs spark %d violations", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("violation %v missing on spark", k)
		}
	}
}

func TestDCDetectionViaIEJoinMatchesNestedLoop(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 150, Zips: 10, ErrorRate: 0.05, Seed: 3})
	ctx := testCtx(t)
	dc := salaryRateDC()

	dIE, _ := NewDetector(ctx, dc)
	vIE, _, err := dIE.Detect(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: same rule with conditions stripped → nested loop via
	// the blocked pipeline with a constant key.
	dNL, _ := NewDetector(ctx, StripConditions(dc))
	vNL, _, err := dNL.Detect(recs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := violationSet(vIE), violationSet(vNL)
	if len(a) == 0 {
		t.Fatal("no DC violations in fixture")
	}
	if len(a) != len(b) {
		t.Fatalf("IEJoin %d vs nested-loop %d violations", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("pair %v missing from nested loop", k)
		}
	}
}

func TestBaselinesAgreeWithPipeline(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 120, Zips: 10, ErrorRate: 0.15, Seed: 4})
	ctx := testCtx(t)
	fd := zipCityFD()
	d, _ := NewDetector(ctx, fd)

	pipeline, _, err := d.Detect(recs)
	if err != nil {
		t.Fatal(err)
	}
	mono, _, err := d.DetectMonolithic(fd, recs)
	if err != nil {
		t.Fatal(err)
	}
	selfjoin, _, err := d.DetectSelfJoin(fd, recs)
	if err != nil {
		t.Fatal(err)
	}
	p, m, s := violationSet(pipeline), violationSet(mono), violationSet(selfjoin)
	if len(p) != len(m) || len(p) != len(s) {
		t.Fatalf("pipeline %d, monolithic %d, selfjoin %d violations", len(p), len(m), len(s))
	}
	for k := range p {
		if !m[k] || !s[k] {
			t.Fatalf("violation %v missing from a baseline", k)
		}
	}
}

func TestCleanDataNoViolations(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 200, Zips: 20, ErrorRate: 0, Seed: 5})
	ctx := testCtx(t)
	d, _ := NewDetector(ctx, zipCityFD(), salaryRateDC())
	vs, _, err := d.Detect(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("clean data produced %d violations", len(vs))
	}
}

func TestRepairRestoresFD(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 400, Zips: 10, ErrorRate: 0.08, Seed: 6})
	ctx := testCtx(t)
	fd := zipCityFD()
	d, _ := NewDetector(ctx, fd)
	vs, _, err := d.Detect(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("fixture has no violations")
	}
	repaired, stats, err := Repair(recs, vs, []Rule{fd}, datagen.TaxID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CellsChanged == 0 || stats.Classes == 0 {
		t.Errorf("repair did nothing: %+v", stats)
	}
	// The repaired dataset must satisfy the FD.
	vs2, _, err := d.Detect(repaired)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs2) != 0 {
		t.Errorf("%d violations remain after repair", len(vs2))
	}
	// Majority voting should settle every zip on its majority city in
	// the dirty data — which, at an 8% error rate, is the true city.
	majority := map[string]string{}
	counts := map[string]map[string]int{}
	for _, r := range recs {
		zip, city := r.Field(datagen.TaxZip).Str(), r.Field(datagen.TaxCity).Str()
		if counts[zip] == nil {
			counts[zip] = map[string]int{}
		}
		counts[zip][city]++
		if counts[zip][city] > counts[zip][majority[zip]] {
			majority[zip] = city
		}
	}
	correct, total := 0, 0
	for _, r := range repaired {
		total++
		if r.Field(datagen.TaxCity).Str() == majority[r.Field(datagen.TaxZip).Str()] {
			correct++
		}
	}
	if frac := float64(correct) / float64(total); frac < 0.99 {
		t.Errorf("repair left %.2f of cities off the majority value", 1-frac)
	}
}

func TestRepairGreedyForDC(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 80, Zips: 5, ErrorRate: 0.05, Seed: 7})
	ctx := testCtx(t)
	dc := salaryRateDC()
	d, _ := NewDetector(ctx, dc)
	vs, _, err := d.Detect(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Skip("fixture has no DC violations at this seed")
	}
	repaired, stats, err := Repair(recs, vs, []Rule{dc}, datagen.TaxID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GreedyApplied == 0 {
		t.Errorf("no greedy fixes applied: %+v", stats)
	}
	vs2, _, err := d.Detect(repaired)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs2) >= len(vs) {
		t.Errorf("repair did not reduce DC violations: %d → %d", len(vs), len(vs2))
	}
}

func TestUDFRule(t *testing.T) {
	// A single-attribute sanity rule expressed as a UDF rule: two
	// records with the same name but different gender are suspicious.
	rule := UDFRule{
		RuleName: "name-gender",
		ScopeFn: func(r data.Record) (data.Record, bool) {
			return r.Project(datagen.TaxID, datagen.TaxFName, datagen.TaxGender), true
		},
		BlockFn:  func(r data.Record) data.Value { return r.Field(1) },
		DetectFn: func(a, b data.Record) bool { return !data.Equal(a.Field(2), b.Field(2)) },
	}
	recs := datagen.Tax(datagen.TaxConfig{N: 100, Zips: 10, ErrorRate: 0, Seed: 8})
	ctx := testCtx(t)
	d, _ := NewDetector(ctx, rule)
	vs, _, err := d.Detect(recs)
	if err != nil {
		t.Fatal(err)
	}
	// The generator draws gender independent of name, so some
	// same-name different-gender pairs must exist.
	if len(vs) == 0 {
		t.Error("UDF rule found nothing")
	}
}

func TestValidate(t *testing.T) {
	n := datagen.TaxSchema.Len()
	if err := Validate(zipCityFD(), n); err != nil {
		t.Errorf("valid FD rejected: %v", err)
	}
	if err := Validate(FD{RuleName: "bad", ID: 0, LHS: []int{99}, RHS: []int{1}}, n); err == nil {
		t.Error("out-of-range FD accepted")
	}
	if err := Validate(FD{RuleName: "bad", ID: 0}, n); err == nil {
		t.Error("empty FD accepted")
	}
	if err := Validate(salaryRateDC(), n); err != nil {
		t.Errorf("valid DC rejected: %v", err)
	}
	if err := Validate(DenialConstraint{RuleName: "bad"}, n); err == nil {
		t.Error("predicate-less DC accepted")
	}
}

func TestHelpers(t *testing.T) {
	vs := []Violation{{Rule: "a", Left: 1, Right: 2}, {Rule: "a", Left: 3, Right: 4}, {Rule: "b", Left: 1, Right: -1}}
	counts := CountByRule(vs)
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Errorf("CountByRule = %v", counts)
	}
	tuples := ViolatingTuples(vs)
	if len(tuples) != 4 || tuples[-1] {
		t.Errorf("ViolatingTuples = %v", tuples)
	}
	if _, err := NewDetector(testCtx(t)); err == nil {
		t.Error("detector without rules accepted")
	}
}
