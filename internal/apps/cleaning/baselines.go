package cleaning

import (
	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// This file implements the baselines of the paper's Figure 3 (see
// DESIGN.md §3): detection approaches that do NOT use the five-operator
// decomposition, and therefore cannot block or exploit fine-grained
// parallelism. They are asymptotically quadratic in the dataset and
// are what the paper's evaluation had to stop after 22 hours.

// DetectMonolithic runs a rule as one opaque Detect UDF over the whole
// dataset — the left baseline of Figure 3. The dataflow is a single
// GroupBy on a constant key whose group function does the full
// pairwise scan: structurally legal RHEEM, but the constant blocking
// key serialises all comparison work into one task.
func (d *Detector) DetectMonolithic(rule Rule, dataset []data.Record, opts ...rheem.RunOption) ([]Violation, *rheem.Report, error) {
	job := d.ctx.NewJob("monolithic-" + rule.Name())
	scoped := job.ReadCollection("data", dataset).
		FlatMap(func(r data.Record) ([]data.Record, error) {
			s, ok := rule.Scope(r)
			if !ok {
				return nil, nil
			}
			return []data.Record{s}, nil
		})
	violations := scoped.GroupBy(plan.ConstKey(),
		func(_ data.Value, all []data.Record) ([]data.Record, error) {
			var out []data.Record
			for i := 0; i < len(all); i++ {
				for j := 0; j < len(all); j++ {
					if i == j {
						continue
					}
					if rule.Detect(all[i], all[j]) {
						out = append(out, violationRecord(rule.Name(),
							all[i].Field(0).Int(), all[j].Field(0).Int()))
					}
				}
			}
			return out, nil
		})
	recs, rep, err := violations.Collect(opts...)
	if err != nil {
		return nil, nil, err
	}
	return dedupSymmetric(rule, dataset, decodeViolations(recs)), rep, nil
}

// DetectSelfJoin runs a rule as a declarative self-join — the
// SQL-on-Spark baseline of Figure 3's right side. Without the rule's
// Block knowledge the join has no equality key, so it lowers to a
// ThetaJoin with an opaque predicate (no declarative conditions),
// which every platform must execute as a nested loop over all pairs.
func (d *Detector) DetectSelfJoin(rule Rule, dataset []data.Record, opts ...rheem.RunOption) ([]Violation, *rheem.Report, error) {
	job := d.ctx.NewJob("selfjoin-" + rule.Name())
	scope := func(r data.Record) ([]data.Record, error) {
		s, ok := rule.Scope(r)
		if !ok {
			return nil, nil
		}
		return []data.Record{s}, nil
	}
	src := plan.Collection(dataset)
	left := job.ReadSource("scan-l", src, int64(len(dataset))).ShareScan("dataset").FlatMap(scope)
	right := job.ReadSource("scan-r", src, int64(len(dataset))).ShareScan("dataset").FlatMap(scope)
	scopedLen := 0
	if len(dataset) > 0 {
		if s, ok := rule.Scope(dataset[0]); ok {
			scopedLen = s.Len()
		}
	}
	joined := left.ThetaJoin(right, func(a, b data.Record) (bool, error) {
		if a.Field(0).Int() == b.Field(0).Int() {
			return false, nil
		}
		return rule.Detect(a, b), nil
	})
	violations := joined.Map(func(r data.Record) (data.Record, error) {
		return violationRecord(rule.Name(), r.Field(0).Int(), r.Field(scopedLen).Int()), nil
	})
	recs, rep, err := violations.Collect(opts...)
	if err != nil {
		return nil, nil, err
	}
	return dedupSymmetric(rule, dataset, decodeViolations(recs)), rep, nil
}

// dedupSymmetric canonicalises violations so baselines and the blocked
// pipeline are comparable: for rules that flag both orientations of
// the same pair (symmetric Detect, e.g. FDs), keep the (min,max)
// orientation only. Asymmetric rules pass through.
func dedupSymmetric(rule Rule, dataset []data.Record, vs []Violation) []Violation {
	scopedOf := map[int64]data.Record{}
	for _, r := range dataset {
		if s, ok := rule.Scope(r); ok {
			scopedOf[s.Field(0).Int()] = s
		}
	}
	seen := map[[2]int64]bool{}
	out := make([]Violation, 0, len(vs))
	for _, v := range vs {
		a, b := scopedOf[v.Left], scopedOf[v.Right]
		symmetric := rule.Detect(a, b) && rule.Detect(b, a)
		key := [2]int64{v.Left, v.Right}
		if symmetric {
			if v.Left > v.Right {
				key = [2]int64{v.Right, v.Left}
			}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Violation{Rule: v.Rule, Left: key[0], Right: key[1]})
	}
	return out
}

// StripConditions wraps an inequality rule so its declarative
// conditions are hidden from the optimizer, forcing nested-loop
// detection — the ablation baseline of experiment E4.
func StripConditions(r Rule) Rule {
	return UDFRule{
		RuleName: r.Name(),
		ScopeFn:  r.Scope,
		BlockFn:  r.Block,
		DetectFn: r.Detect,
		GenFixFn: r.GenFix,
		// CondsList deliberately nil.
	}
}
