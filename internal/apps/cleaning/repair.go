package cleaning

import (
	"fmt"
	"sort"

	"rheem/internal/data"
)

// RepairStats summarises a repair pass.
type RepairStats struct {
	ViolationsIn  int
	CellsChanged  int
	Classes       int // equivalence classes formed
	GreedyApplied int // fixes applied outside equivalence classes
}

// Repair produces a repaired copy of the dataset from detected
// violations — the GenFix consumer. Equality repairs (an FD's "these
// two cells must agree") are solved with the classic equivalence-class
// algorithm: all cells connected by must-equal fixes form a class, and
// every cell in a class is assigned the class's most frequent current
// value (ties broken by value order, so repair is deterministic).
// Remaining fixes (inequality rules' value adjustments) are applied
// greedily, first fix per cell.
//
// idField names the dataset attribute holding the tuple id that
// violations reference.
func Repair(dataset []data.Record, violations []Violation, rules []Rule, idField int) ([]data.Record, RepairStats, error) {
	stats := RepairStats{ViolationsIn: len(violations)}
	byName := map[string]Rule{}
	for _, r := range rules {
		byName[r.Name()] = r
	}
	byID := map[int64]int{} // tuple id → dataset position
	for i, r := range dataset {
		byID[r.Field(idField).Int()] = i
	}
	scopedCache := map[string]map[int64]data.Record{}
	scopedFor := func(rule Rule, tuple int64) (data.Record, error) {
		cache, ok := scopedCache[rule.Name()]
		if !ok {
			cache = map[int64]data.Record{}
			scopedCache[rule.Name()] = cache
		}
		if s, ok := cache[tuple]; ok {
			return s, nil
		}
		pos, ok := byID[tuple]
		if !ok {
			return data.Record{}, fmt.Errorf("cleaning: violation references unknown tuple %d", tuple)
		}
		s, _ := rule.Scope(dataset[pos])
		cache[tuple] = s
		return s, nil
	}

	// Gather fixes: pairs of fixes targeting the same field from one
	// violation are "must equal" constraints (FD GenFix emits both
	// directions); single fixes are greedy assignments.
	dsu := newDSU()
	var greedy []Fix
	for _, v := range violations {
		rule, ok := byName[v.Rule]
		if !ok {
			return nil, stats, fmt.Errorf("cleaning: violation for unknown rule %q", v.Rule)
		}
		a, err := scopedFor(rule, v.Left)
		if err != nil {
			return nil, stats, err
		}
		b, err := scopedFor(rule, v.Right)
		if err != nil {
			return nil, stats, err
		}
		fixes := rule.GenFix(a, b)
		// Group fixes by field: two fixes on the same field targeting
		// each other's tuples = equality constraint.
		byField := map[int][]Fix{}
		for _, f := range fixes {
			byField[f.Cell.Field] = append(byField[f.Cell.Field], f)
		}
		for _, fs := range byField {
			if len(fs) == 2 && fs[0].Cell.Tuple != fs[1].Cell.Tuple {
				dsu.union(fs[0].Cell, fs[1].Cell)
			} else {
				greedy = append(greedy, fs...)
			}
		}
	}

	// Materialise the repaired dataset.
	repaired := data.CloneRecords(dataset)
	valueOf := func(c Cell) data.Value {
		return repaired[byID[c.Tuple]].Field(c.Field)
	}
	setValue := func(c Cell, v data.Value) {
		pos := byID[c.Tuple]
		if !data.Equal(repaired[pos].Field(c.Field), v) {
			repaired[pos] = repaired[pos].WithField(c.Field, v)
			stats.CellsChanged++
		}
	}

	// Equivalence classes: majority value wins.
	classes := dsu.classes()
	stats.Classes = len(classes)
	for _, cells := range classes {
		type freq struct {
			v data.Value
			n int
		}
		var counts []freq
		for _, c := range cells {
			v := valueOf(c)
			found := false
			for i := range counts {
				if data.Equal(counts[i].v, v) {
					counts[i].n++
					found = true
					break
				}
			}
			if !found {
				counts = append(counts, freq{v: v, n: 1})
			}
		}
		sort.Slice(counts, func(i, j int) bool {
			if counts[i].n != counts[j].n {
				return counts[i].n > counts[j].n
			}
			return data.Compare(counts[i].v, counts[j].v) < 0
		})
		winner := counts[0].v
		for _, c := range cells {
			setValue(c, winner)
		}
	}

	// Greedy fixes: a cell can receive many proposals (one per
	// violating partner). Applying the extreme (largest) proposed
	// value satisfies every partner that proposed a value at once for
	// monotone constraints like the salary/rate rule — each proposal
	// asks to pull the cell at least that far.
	proposals := map[Cell]data.Value{}
	for _, f := range greedy {
		if cur, ok := proposals[f.Cell]; !ok || data.Compare(f.To, cur) > 0 {
			proposals[f.Cell] = f.To
		}
	}
	for cell, v := range proposals {
		setValue(cell, v)
		stats.GreedyApplied++
	}
	return repaired, stats, nil
}

// dsu is a union-find over cells.
type dsu struct {
	parent map[Cell]Cell
}

func newDSU() *dsu { return &dsu{parent: map[Cell]Cell{}} }

func (d *dsu) find(c Cell) Cell {
	p, ok := d.parent[c]
	if !ok {
		d.parent[c] = c
		return c
	}
	if p == c {
		return c
	}
	root := d.find(p)
	d.parent[c] = root
	return root
}

func (d *dsu) union(a, b Cell) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[rb] = ra
	}
}

// classes returns the non-trivial equivalence classes.
func (d *dsu) classes() map[Cell][]Cell {
	out := map[Cell][]Cell{}
	for c := range d.parent {
		out[d.find(c)] = append(out[d.find(c)], c)
	}
	for root, cells := range out {
		if len(cells) < 2 {
			delete(out, root)
		}
	}
	return out
}
