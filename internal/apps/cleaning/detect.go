package cleaning

import (
	"fmt"

	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// Detector runs rules over datasets through RHEEM.
type Detector struct {
	ctx   *rheem.Context
	rules []Rule
}

// NewDetector wires rules to a context.
func NewDetector(ctx *rheem.Context, rules ...Rule) (*Detector, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("cleaning: no rules")
	}
	return &Detector{ctx: ctx, rules: rules}, nil
}

// violation record layout produced by the detection dataflows:
// (rule Str, left Int, right Int).
func violationRecord(rule string, left, right int64) data.Record {
	return data.NewRecord(data.Str(rule), data.Int(left), data.Int(right))
}

func decodeViolations(recs []data.Record) []Violation {
	out := make([]Violation, len(recs))
	for i, r := range recs {
		out[i] = Violation{Rule: r.Field(0).Str(), Left: r.Field(1).Int(), Right: r.Field(2).Int()}
	}
	return out
}

// Detect runs every rule's detection dataflow and returns all
// violations. Equality rules use the blocked five-operator pipeline;
// rules with declarative inequality conditions use a self theta-join
// so the optimizer can pick IEJoin. Reports are merged across rules.
func (d *Detector) Detect(dataset []data.Record, opts ...rheem.RunOption) ([]Violation, *rheem.Report, error) {
	var all []Violation
	merged := &rheem.Report{}
	for _, rule := range d.rules {
		var (
			recs []data.Record
			rep  *rheem.Report
			err  error
		)
		if len(rule.Conditions()) > 0 {
			recs, rep, err = d.detectThetaJoin(rule, dataset, opts...)
		} else {
			recs, rep, err = d.detectBlocked(rule, dataset, opts...)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("cleaning: rule %s: %w", rule.Name(), err)
		}
		all = append(all, decodeViolations(recs)...)
		if rep != nil {
			merged.Metrics.Add(rep.Metrics)
			merged.Plan = rep.Plan
			merged.Failovers += rep.Failovers
			merged.PlatformHealth = rep.PlatformHealth
			merged.Reoptimized = merged.Reoptimized || rep.Reoptimized
			merged.Mismatches = append(merged.Mismatches, rep.Mismatches...)
			if rep.Trace != nil {
				merged.Trace = rep.Trace
			}
			// The stats and telemetry snapshots are cumulative across the
			// context's runs, so the last rule's snapshot covers them all.
			if rep.PlatformStats != nil {
				merged.PlatformStats = rep.PlatformStats
			}
			if rep.Telemetry != nil {
				merged.Telemetry = rep.Telemetry
			}
		}
	}
	return all, merged, nil
}

// detectBlocked is the five-operator pipeline:
//
//	Source → FlatMap(Scope) → GroupBy(Block; Iterate+Detect) → violations
//
// Iterate enumerates ordered pairs within the block; Detect flags them.
func (d *Detector) detectBlocked(rule Rule, dataset []data.Record, opts ...rheem.RunOption) ([]data.Record, *rheem.Report, error) {
	job := d.ctx.NewJob("detect-" + rule.Name())
	scoped := job.ReadCollection("data", dataset).
		FlatMap(func(r data.Record) ([]data.Record, error) {
			s, ok := rule.Scope(r)
			if !ok {
				return nil, nil
			}
			return []data.Record{s}, nil
		})
	violations := scoped.GroupBy(
		func(r data.Record) (data.Value, error) { return rule.Block(r), nil },
		func(_ data.Value, block []data.Record) ([]data.Record, error) {
			var out []data.Record
			// Iterate: unordered candidate pairs; Detect both
			// orientations so asymmetric rules see each pair once per
			// direction.
			for i := 0; i < len(block); i++ {
				for j := i + 1; j < len(block); j++ {
					if rule.Detect(block[i], block[j]) {
						out = append(out, violationRecord(rule.Name(),
							block[i].Field(0).Int(), block[j].Field(0).Int()))
					} else if rule.Detect(block[j], block[i]) {
						out = append(out, violationRecord(rule.Name(),
							block[j].Field(0).Int(), block[i].Field(0).Int()))
					}
				}
			}
			return out, nil
		})
	return violations.Collect(opts...)
}

// detectThetaJoin lowers an inequality rule onto a self theta-join
// with declarative conditions. The optimizer chooses between IEJoin
// and a nested loop; forcing the nested loop (for the E4 baseline) is
// done by clearing the rule's conditions via a UDFRule wrapper.
func (d *Detector) detectThetaJoin(rule Rule, dataset []data.Record, opts ...rheem.RunOption) ([]data.Record, *rheem.Report, error) {
	job := d.ctx.NewJob("detect-ie-" + rule.Name())
	scope := func(r data.Record) ([]data.Record, error) {
		s, ok := rule.Scope(r)
		if !ok {
			return nil, nil
		}
		return []data.Record{s}, nil
	}
	// Both sides scan the same dataset: the shared ScanKey lets the
	// optimizer's shared-scan rule collapse the self-join's two reads
	// into a single scan.
	src := plan.Collection(dataset)
	left := job.ReadSource("scan-l", src, int64(len(dataset))).ShareScan("dataset").FlatMap(scope)
	right := job.ReadSource("scan-r", src, int64(len(dataset))).ShareScan("dataset").FlatMap(scope)
	scopedLen := 0
	if len(dataset) > 0 {
		if s, ok := rule.Scope(dataset[0]); ok {
			scopedLen = s.Len()
		}
	}
	// Residual: exclude self-pairs (same tuple id).
	residual := func(a, b data.Record) (bool, error) {
		return a.Field(0).Int() != b.Field(0).Int(), nil
	}
	joined := left.ThetaJoin(right, residual, rule.Conditions()...)
	violations := joined.Map(func(r data.Record) (data.Record, error) {
		// Joined record = Concat(scopedLeft, scopedRight).
		return violationRecord(rule.Name(), r.Field(0).Int(), r.Field(scopedLen).Int()), nil
	})
	return violations.Collect(opts...)
}

// CountByRule tallies violations per rule name.
func CountByRule(vs []Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Rule]++
	}
	return out
}

// ViolatingTuples returns the distinct tuple ids involved in
// violations.
func ViolatingTuples(vs []Violation) map[int64]bool {
	out := map[int64]bool{}
	for _, v := range vs {
		out[v.Left] = true
		if v.Right >= 0 {
			out[v.Right] = true
		}
	}
	return out
}
