package cleaning

import (
	"testing"

	"rheem/internal/data/datagen"
)

func TestCleanReachesFixpointOnFD(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 300, Zips: 10, ErrorRate: 0.08, Seed: 21})
	ctx := testCtx(t)
	fd := zipCityFD()
	cleaned, res, err := Clean(ctx, recs, []Rule{fd}, datagen.TaxID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialViolations == 0 {
		t.Fatal("fixture has no violations")
	}
	if res.FinalViolations != 0 {
		t.Errorf("fixpoint not reached: %d violations remain after %d rounds", res.FinalViolations, res.Rounds)
	}
	if res.Rounds < 1 || res.CellsChanged == 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if len(cleaned) != len(recs) {
		t.Errorf("record count changed: %d → %d", len(recs), len(cleaned))
	}
}

func TestCleanReducesDCViolations(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 300, Zips: 10, ErrorRate: 0.05, Seed: 22})
	ctx := testCtx(t)
	dc := salaryRateDC()
	_, res, err := Clean(ctx, recs, []Rule{dc}, datagen.TaxID, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialViolations == 0 {
		t.Skip("no DC violations at this seed")
	}
	if res.FinalViolations >= res.InitialViolations {
		t.Errorf("cleaning did not reduce violations: %d → %d", res.InitialViolations, res.FinalViolations)
	}
}

func TestCleanOnCleanDataIsNoop(t *testing.T) {
	recs := datagen.Tax(datagen.TaxConfig{N: 200, Zips: 10, ErrorRate: 0, Seed: 23})
	ctx := testCtx(t)
	cleaned, res, err := Clean(ctx, recs, []Rule{zipCityFD(), salaryRateDC()}, datagen.TaxID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.CellsChanged != 0 || res.FinalViolations != 0 {
		t.Errorf("clean data modified: %+v", res)
	}
	for i := range recs {
		if !recsEqual(cleaned[i], recs[i]) {
			t.Fatalf("record %d changed", i)
		}
	}
}

func recsEqual(a, b interface{ String() string }) bool { return a.String() == b.String() }
