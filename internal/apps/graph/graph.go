// Package graph is the graph processing application the paper lists as
// in development on RHEEM (§5). It expresses the classic iterative
// graph algorithms as RHEEM dataflows — joins for message passing over
// edges, ReduceByKey for aggregation at the receiving vertex, Repeat /
// DoWhile for the iteration — so they run unchanged on any registered
// platform, and the optimizer decides where.
//
// Edges are (src Int, dst Int) records (datagen.EdgeSchema).
package graph

import (
	"fmt"

	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// nodesOf collects the distinct node ids of an edge list.
func nodesOf(edges []data.Record) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, e := range edges {
		for _, f := range []int64{e.Field(0).Int(), e.Field(1).Int()} {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// PageRankConfig parameterises PageRank.
type PageRankConfig struct {
	Iterations int     // default 10
	Damping    float64 // default 0.85
}

// PageRank computes damped PageRank over a directed edge list.
// Each iteration is one RHEEM loop body execution: ranks join the
// out-degree-annotated edges at the source, contributions shuffle to
// the destination, and a union with the teleport base re-seeds nodes
// without in-edges. Mass from dangling nodes (no out-edges) is
// dropped, the usual simplification; ranks are therefore relative, not
// a strict probability distribution.
func PageRank(ctx *rheem.Context, edges []data.Record, cfg PageRankConfig, opts ...rheem.RunOption) (map[int64]float64, *rheem.Report, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10
	}
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if len(edges) == 0 {
		return nil, nil, fmt.Errorf("graph: empty edge list")
	}
	nodes := nodesOf(edges)
	n := float64(len(nodes))

	// Annotate edges with the source's out-degree: (src, dst, outdeg).
	outdeg := map[int64]int64{}
	for _, e := range edges {
		outdeg[e.Field(0).Int()]++
	}
	annotated := make([]data.Record, len(edges))
	for i, e := range edges {
		annotated[i] = data.NewRecord(e.Field(0), e.Field(1), data.Int(outdeg[e.Field(0).Int()]))
	}
	// Teleport base: (node, (1-d)/n).
	base := make([]data.Record, len(nodes))
	initRanks := make([]data.Record, len(nodes))
	for i, node := range nodes {
		base[i] = data.NewRecord(data.Int(node), data.Float((1-cfg.Damping)/n))
		initRanks[i] = data.NewRecord(data.Int(node), data.Float(1/n))
	}

	job := ctx.NewJob("pagerank")
	final := job.ReadCollection("ranks0", initRanks).
		Repeat(cfg.Iterations, func(lb *rheem.LoopBody, ranks *rheem.DataQuanta) *rheem.DataQuanta {
			es := lb.ReadCollection("edges", annotated)
			contrib := ranks.
				Join(es, plan.FieldKey(0), plan.FieldKey(0)).
				// (node, rank, src, dst, outdeg) → (dst, d·rank/outdeg)
				Map(func(r data.Record) (data.Record, error) {
					rank := r.Field(1).Float()
					deg := float64(r.Field(4).Int())
					return data.NewRecord(r.Field(3), data.Float(cfg.Damping*rank/deg)), nil
				})
			seed := lb.ReadCollection("base", base)
			return contrib.Union(seed).ReduceByKey(plan.FieldKey(0), plan.SumField(1))
		})
	recs, rep, err := final.Collect(opts...)
	if err != nil {
		return nil, rep, err
	}
	out := make(map[int64]float64, len(recs))
	for _, r := range recs {
		out[r.Field(0).Int()] = r.Field(1).Float()
	}
	return out, rep, nil
}

// ConnectedComponents labels every node of the undirected view of the
// edge list with the smallest node id reachable from it, using
// label propagation inside a DoWhile loop that stops at fixpoint.
func ConnectedComponents(ctx *rheem.Context, edges []data.Record, maxIter int, opts ...rheem.RunOption) (map[int64]int64, *rheem.Report, error) {
	if maxIter <= 0 {
		maxIter = 50
	}
	if len(edges) == 0 {
		return nil, nil, fmt.Errorf("graph: empty edge list")
	}
	nodes := nodesOf(edges)
	init := make([]data.Record, len(nodes))
	for i, node := range nodes {
		init[i] = data.NewRecord(data.Int(node), data.Int(node))
	}
	// Undirected view: both orientations.
	undirected := make([]data.Record, 0, 2*len(edges))
	for _, e := range edges {
		undirected = append(undirected, e, data.NewRecord(e.Field(1), e.Field(0)))
	}

	var prevSig uint64
	cond := func(_ int, state []data.Record) (bool, error) {
		var sig uint64
		for _, r := range state {
			sig ^= data.HashRecord(r, 42)
		}
		changed := sig != prevSig
		prevSig = sig
		return changed, nil
	}

	job := ctx.NewJob("connected-components")
	final := job.ReadCollection("labels0", init).
		DoWhile(cond, maxIter, func(lb *rheem.LoopBody, labels *rheem.DataQuanta) *rheem.DataQuanta {
			es := lb.ReadCollection("edges", undirected)
			propagated := labels.
				Join(es, plan.FieldKey(0), plan.FieldKey(0)).
				// (node, comp, src, dst) → (dst, comp)
				Map(func(r data.Record) (data.Record, error) {
					return data.NewRecord(r.Field(3), r.Field(1)), nil
				})
			return labels.Union(propagated).
				ReduceByKey(plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
					if a.Field(1).Int() <= b.Field(1).Int() {
						return a, nil
					}
					return b, nil
				})
		})
	recs, rep, err := final.Collect(opts...)
	if err != nil {
		return nil, rep, err
	}
	out := make(map[int64]int64, len(recs))
	for _, r := range recs {
		out[r.Field(0).Int()] = r.Field(1).Int()
	}
	return out, rep, nil
}

// Degrees computes (in, out) degree per node as a RHEEM job.
func Degrees(ctx *rheem.Context, edges []data.Record, opts ...rheem.RunOption) (map[int64][2]int64, *rheem.Report, error) {
	job := ctx.NewJob("degrees")
	// (node, out, in) contributions from each edge endpoint.
	contrib := job.ReadCollection("edges", edges).
		FlatMap(func(e data.Record) ([]data.Record, error) {
			return []data.Record{
				data.NewRecord(e.Field(0), data.Int(1), data.Int(0)),
				data.NewRecord(e.Field(1), data.Int(0), data.Int(1)),
			}, nil
		}).
		ReduceByKey(plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
			return data.NewRecord(a.Field(0),
				data.Int(a.Field(1).Int()+b.Field(1).Int()),
				data.Int(a.Field(2).Int()+b.Field(2).Int())), nil
		})
	recs, rep, err := contrib.Collect(opts...)
	if err != nil {
		return nil, rep, err
	}
	out := make(map[int64][2]int64, len(recs))
	for _, r := range recs {
		out[r.Field(0).Int()] = [2]int64{r.Field(2).Int(), r.Field(1).Int()} // [in, out]
	}
	return out, rep, nil
}
