package graph

import (
	"math"
	"testing"

	"rheem"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

func testCtx(t *testing.T) *rheem.Context {
	t.Helper()
	ctx, err := rheem.NewContext(rheem.Config{
		Spark: sparksim.Config{JobOverhead: 1e5, TaskOverhead: 1e4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func edge(s, d int64) data.Record { return data.NewRecord(data.Int(s), data.Int(d)) }

func TestPageRankStarGraph(t *testing.T) {
	// Star: everyone links to 0; node 0 links to 1. Node 0 must end up
	// with the highest rank, node 1 second.
	edges := []data.Record{
		edge(1, 0), edge(2, 0), edge(3, 0), edge(4, 0), edge(0, 1),
	}
	ranks, rep, err := PageRank(testCtx(t), edges, PageRankConfig{Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 5 {
		t.Fatalf("%d ranks", len(ranks))
	}
	if !(ranks[0] > ranks[1] && ranks[1] > ranks[2]) {
		t.Errorf("rank order wrong: %v", ranks)
	}
	for n, r := range ranks {
		if r <= 0 || math.IsNaN(r) {
			t.Errorf("node %d rank %v", n, r)
		}
	}
	if rep.Metrics.Jobs < 15 {
		t.Errorf("15 iterations ran %d jobs", rep.Metrics.Jobs)
	}
}

func TestPageRankCycleIsUniform(t *testing.T) {
	// A directed cycle is perfectly symmetric: ranks must converge to
	// equal values.
	edges := []data.Record{edge(0, 1), edge(1, 2), edge(2, 3), edge(3, 0)}
	ranks, _, err := PageRank(testCtx(t), edges, PageRankConfig{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	for n, r := range ranks {
		if math.Abs(r-0.25) > 0.01 {
			t.Errorf("cycle node %d rank %v, want ≈0.25", n, r)
		}
	}
}

func TestPageRankSameAcrossPlatforms(t *testing.T) {
	edges := datagen.Graph(datagen.GraphConfig{Nodes: 30, Edges: 80, Seed: 1})
	ctx := testCtx(t)
	rj, _, err := PageRank(ctx, edges, PageRankConfig{Iterations: 8}, rheem.OnPlatform(javaengine.ID))
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := PageRank(ctx, edges, PageRankConfig{Iterations: 8}, rheem.OnPlatform(sparksim.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(rj) != len(rs) {
		t.Fatalf("java %d nodes, spark %d", len(rj), len(rs))
	}
	for n := range rj {
		if math.Abs(rj[n]-rs[n]) > 1e-9 {
			t.Fatalf("node %d: %v vs %v", n, rj[n], rs[n])
		}
	}
}

func TestConnectedComponentsTwoIslands(t *testing.T) {
	// {0,1,2} and {10,11} with no cross edges.
	edges := []data.Record{edge(0, 1), edge(1, 2), edge(10, 11)}
	comps, _, err := ConnectedComponents(testCtx(t), edges, 20)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0] != 0 || comps[1] != 0 || comps[2] != 0 {
		t.Errorf("island A labels: %v", comps)
	}
	if comps[10] != 10 || comps[11] != 10 {
		t.Errorf("island B labels: %v", comps)
	}
}

func TestConnectedComponentsChainNeedsPropagation(t *testing.T) {
	// A long chain exercises multi-iteration label propagation.
	var edges []data.Record
	for i := int64(0); i < 15; i++ {
		edges = append(edges, edge(i+1, i)) // reversed orientation on purpose
	}
	comps, _, err := ConnectedComponents(testCtx(t), edges, 30)
	if err != nil {
		t.Fatal(err)
	}
	for n, c := range comps {
		if c != 0 {
			t.Errorf("chain node %d labelled %d", n, c)
		}
	}
}

func TestDegrees(t *testing.T) {
	edges := []data.Record{edge(0, 1), edge(0, 2), edge(1, 2), edge(2, 0)}
	deg, _, err := Degrees(testCtx(t), edges)
	if err != nil {
		t.Fatal(err)
	}
	// [in, out]
	want := map[int64][2]int64{0: {1, 2}, 1: {1, 1}, 2: {2, 1}}
	for n, w := range want {
		if deg[n] != w {
			t.Errorf("node %d degrees %v, want %v", n, deg[n], w)
		}
	}
}

func TestEmptyEdgeListRejected(t *testing.T) {
	ctx := testCtx(t)
	if _, _, err := PageRank(ctx, nil, PageRankConfig{}); err == nil {
		t.Error("PageRank on empty graph accepted")
	}
	if _, _, err := ConnectedComponents(ctx, nil, 5); err == nil {
		t.Error("CC on empty graph accepted")
	}
}

func TestPageRankOnGeneratedGraphSkewed(t *testing.T) {
	// The generator biases in-links to low ids; average rank of the
	// lowest decile must beat the highest decile.
	edges := datagen.Graph(datagen.GraphConfig{Nodes: 100, Edges: 600, Seed: 2})
	ranks, _, err := PageRank(testCtx(t), edges, PageRankConfig{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	var low, high float64
	var nlow, nhigh int
	for n, r := range ranks {
		if n < 10 {
			low += r
			nlow++
		} else if n >= 90 {
			high += r
			nhigh++
		}
	}
	if nlow == 0 || nhigh == 0 {
		t.Skip("decile nodes missing from edge sample")
	}
	if low/float64(nlow) <= high/float64(nhigh) {
		t.Errorf("rank skew missing: low=%.5f high=%.5f", low/float64(nlow), high/float64(nhigh))
	}
}
