package ml

import (
	"testing"

	"rheem"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

func testCtx(t *testing.T) *rheem.Context {
	t.Helper()
	ctx, err := rheem.NewContext(rheem.Config{
		Spark: sparksim.Config{JobOverhead: 1e5, TaskOverhead: 1e4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestSVMLearnsSeparableData(t *testing.T) {
	pts := datagen.Points(datagen.PointsConfig{N: 400, Dim: 6, Seed: 1})
	tpl := SVM(pts, GradientConfig{Iterations: 60, Dim: 6, LearningRate: 0.5})
	state, rep, err := tpl.Run(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	w, err := Weights(state)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(w, pts); acc < 0.95 {
		t.Errorf("SVM accuracy %.3f < 0.95", acc)
	}
	if rep.Metrics.Jobs < 60 {
		t.Errorf("60-iteration training launched only %d jobs", rep.Metrics.Jobs)
	}
	// Final iteration counter must equal the iteration count.
	if state[0].Field(0).Int() != 60 {
		t.Errorf("iteration counter = %d", state[0].Field(0).Int())
	}
}

func TestSVMSameModelOnJavaAndSpark(t *testing.T) {
	pts := datagen.Points(datagen.PointsConfig{N: 200, Dim: 4, Seed: 2})
	ctx := testCtx(t)
	run := func(opts ...rheem.RunOption) []float64 {
		tpl := SVM(pts, GradientConfig{Iterations: 25, Dim: 4})
		state, _, err := tpl.Run(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		w, _ := Weights(state)
		return w
	}
	wj := run(rheem.OnPlatform(javaengine.ID))
	ws := run(rheem.OnPlatform(sparksim.ID))
	for i := range wj {
		if diff := wj[i] - ws[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("weight %d differs across platforms: %g vs %g", i, wj[i], ws[i])
		}
	}
}

func TestLinearRegressionRecoversPlane(t *testing.T) {
	// y = 2·x0 - 3·x1 over a grid.
	var pts []data.Record
	for i := -5; i <= 5; i++ {
		for j := -5; j <= 5; j++ {
			x := []float64{float64(i), float64(j)}
			pts = append(pts, data.NewRecord(data.Float(2*x[0]-3*x[1]), data.Vec(x)))
		}
	}
	tpl := LinearRegression(pts, GradientConfig{Iterations: 120, Dim: 2, LearningRate: 0.05})
	state, _, err := tpl.Run(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Weights(state)
	if w[0] < 1.8 || w[0] > 2.2 || w[1] < -3.2 || w[1] > -2.8 {
		t.Errorf("recovered weights %v, want ≈ (2, -3)", w)
	}
}

func TestLogisticRegressionSeparates(t *testing.T) {
	pts := datagen.Points(datagen.PointsConfig{N: 300, Dim: 4, Seed: 3})
	tpl := LogisticRegression(pts, GradientConfig{Iterations: 80, Dim: 4, LearningRate: 0.8})
	state, _, err := tpl.Run(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Weights(state)
	if acc := Accuracy(w, pts); acc < 0.9 {
		t.Errorf("logreg accuracy %.3f < 0.9", acc)
	}
}

func TestKMeansFindsBlobs(t *testing.T) {
	// Two well-separated blobs via the points generator (labels ±1
	// centre the blobs apart); k=2 must split them.
	raw := datagen.Points(datagen.PointsConfig{N: 200, Dim: 3, Seed: 4})
	pts := IndexPoints(raw)
	tpl := KMeans(pts, KMeansConfig{K: 2, Iterations: 10, Dim: 3})
	state, _, err := tpl.Run(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	cents := Centroids(state)
	if len(cents) != 2 {
		t.Fatalf("got %d centroids", len(cents))
	}
	// Points from the same generator blob must co-cluster with high
	// purity.
	agree := 0
	for i, p := range raw {
		a := Assign(cents, p.Field(1).Vec())
		// Compare against the label sign via a majority convention:
		// count agreement of (cluster == cluster of first positive).
		_ = i
		if (a == Assign(cents, raw[0].Field(1).Vec())) == (p.Field(0).Float() == raw[0].Field(0).Float()) {
			agree++
		}
	}
	if purity := float64(agree) / float64(len(raw)); purity < 0.9 {
		t.Errorf("cluster purity %.3f < 0.9", purity)
	}
}

func TestKMeansToleranceStopsEarly(t *testing.T) {
	raw := datagen.Points(datagen.PointsConfig{N: 100, Dim: 2, Seed: 5})
	pts := IndexPoints(raw)
	tpl := KMeans(pts, KMeansConfig{K: 2, Iterations: 50, Dim: 2, Tolerance: 1e-6})
	state, rep, err := tpl.Run(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 2 {
		t.Fatalf("%d centroids", len(state))
	}
	// Early stop ⇒ far fewer jobs than the 50-iteration bound would
	// produce (each iteration is at least one job).
	if rep.Metrics.Jobs >= 50 {
		t.Errorf("tolerance did not stop early: %d jobs", rep.Metrics.Jobs)
	}
}

func TestTemplateErrors(t *testing.T) {
	ctx := testCtx(t)
	if _, _, err := SVM(nil, GradientConfig{Iterations: 5, Dim: 2}).Run(ctx); err == nil {
		t.Error("SVM with no points accepted")
	}
	bad := &Template{Name: "bad", Iterations: 0}
	if _, _, err := bad.Run(ctx); err == nil {
		t.Error("zero-iteration template accepted")
	}
	if _, _, err := KMeans(nil, KMeansConfig{K: 3}).Run(ctx); err == nil {
		t.Error("kmeans with too few points accepted")
	}
}

func TestWeightsValidation(t *testing.T) {
	if _, err := Weights(nil); err == nil {
		t.Error("empty state accepted")
	}
	if _, err := Weights([]data.Record{
		data.NewRecord(data.Int(0), data.Vec([]float64{1})),
		data.NewRecord(data.Int(0), data.Vec([]float64{2})),
	}); err == nil {
		t.Error("multi-record state accepted")
	}
}

func TestPredictHelpers(t *testing.T) {
	w := []float64{1, -1}
	if PredictSign(w, []float64{2, 1}) != 1 {
		t.Error("positive side misclassified")
	}
	if PredictSign(w, []float64{0, 5}) != -1 {
		t.Error("negative side misclassified")
	}
	pts := []data.Record{
		data.NewRecord(data.Float(1), data.Vec([]float64{2, 1})),
		data.NewRecord(data.Float(-1), data.Vec([]float64{0, 5})),
	}
	if Accuracy(w, pts) != 1 {
		t.Error("accuracy wrong")
	}
	if Accuracy(w, nil) != 0 {
		t.Error("empty accuracy wrong")
	}
}
