package ml

import (
	"fmt"
	"math"

	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// KMeansConfig parameterises K-means clustering.
type KMeansConfig struct {
	K          int
	Iterations int
	Dim        int
	// Tolerance, when positive, stops early once no centroid moves
	// farther than this between iterations (via the Loop template's
	// DoWhile form).
	Tolerance float64
}

// KMeans builds a K-means trainer over (id, features) points using the
// paper's K-means decomposition (§3.2): a GetCentroid step that tags
// each point with its closest centroid, a GroupBy *enhancer* bridging
// the signature gap, and a SetCentroids step computing new centroids
// per group.
//
// The loop state is k records (centroidID Int, centroid Vec,
// moved Float); `moved` carries each centroid's displacement so a
// tolerance-based stopping condition can read it without extra plumbing.
func KMeans(points []data.Record, cfg KMeansConfig) *Template {
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20
	}
	if cfg.Dim <= 0 && len(points) > 0 {
		cfg.Dim = len(points[0].Field(1).Vec())
	}
	t := &Template{
		Name:       "kmeans",
		Iterations: cfg.Iterations,
		Initialize: func() ([]data.Record, error) {
			if len(points) < cfg.K {
				return nil, fmt.Errorf("kmeans: %d points for k=%d", len(points), cfg.K)
			}
			// Deterministic seeding: the first k points.
			init := make([]data.Record, cfg.K)
			for i := 0; i < cfg.K; i++ {
				c := append([]float64(nil), points[i].Field(1).Vec()...)
				init[i] = data.NewRecord(data.Int(int64(i)), data.Vec(c), data.Float(math.Inf(1)))
			}
			return init, nil
		},
		Process: func(lb *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
			pts := lb.ReadCollection("points", points)
			// GetCentroid: tag each point with its nearest centroid.
			// points × centroids → keep min distance per point.
			tagged := pts.Cartesian(state).
				// (id, x, cid, c, moved) → (id, x, cid, dist)
				Map(func(r data.Record) (data.Record, error) {
					x, c := r.Field(1).Vec(), r.Field(3).Vec()
					return data.NewRecord(r.Field(0), r.Field(1), r.Field(2), data.Float(dist2(x, c))), nil
				}).
				// per point, keep the closest centroid
				ReduceByKey(plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
					if a.Field(3).Float() <= b.Field(3).Float() {
						return a, nil
					}
					return b, nil
				})
			// GroupBy enhancer + SetCentroids: average points per
			// centroid. Old centroids are carried along (as a vector
			// sum base of zero plus lookup via closure-free re-join is
			// avoided by recomputing displacement in the group UDF
			// against the tagged points' old assignment distance).
			return tagged.GroupBy(plan.FieldKey(2), func(cid data.Value, grp []data.Record) ([]data.Record, error) {
				sum := make([]float64, cfg.Dim)
				for _, r := range grp {
					sum = vecAdd(sum, r.Field(1).Vec())
				}
				mean := vecScale(sum, 1/float64(len(grp)))
				// Displacement proxy: mean squared distance of members
				// to the new centroid; it shrinks as clustering
				// stabilises and serves the tolerance condition.
				var spread float64
				for _, r := range grp {
					spread += dist2(r.Field(1).Vec(), mean)
				}
				spread /= float64(len(grp))
				return []data.Record{data.NewRecord(cid, data.Vec(mean), data.Float(spread))}, nil
			})
		},
	}
	if cfg.Tolerance > 0 {
		prev := map[int64][]float64{}
		t.Converged = func(_ int, state []data.Record) (bool, error) {
			maxMove := 0.0
			for _, r := range state {
				cid := r.Field(0).Int()
				c := r.Field(1).Vec()
				if p, ok := prev[cid]; ok {
					if m := dist2(p, c); m > maxMove {
						maxMove = m
					}
				} else {
					maxMove = math.Inf(1)
				}
				prev[cid] = append([]float64(nil), c...)
			}
			return maxMove > cfg.Tolerance*cfg.Tolerance, nil
		}
	}
	return t
}

// dist2 returns the squared euclidean distance.
func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Centroids extracts (id, vector) pairs from a K-means final state.
func Centroids(state []data.Record) map[int64][]float64 {
	out := make(map[int64][]float64, len(state))
	for _, r := range state {
		out[r.Field(0).Int()] = r.Field(1).Vec()
	}
	return out
}

// Assign returns the nearest centroid id for a point.
func Assign(centroids map[int64][]float64, x []float64) int64 {
	best, bestD := int64(-1), math.Inf(1)
	for id, c := range centroids {
		if d := dist2(x, c); d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// IndexPoints converts (label, features) records into the (id,
// features) shape K-means consumes.
func IndexPoints(points []data.Record) []data.Record {
	out := make([]data.Record, len(points))
	for i, p := range points {
		out[i] = data.NewRecord(data.Int(int64(i)), p.Field(1))
	}
	return out
}
