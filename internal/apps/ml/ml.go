// Package ml is the machine-learning application of the paper's
// Example 1: a developer exposes three logical operator templates —
//
//	Initialize  "for initializing algorithm-specific parameters"
//	Process     "for the computations required by the ML algorithm"
//	Loop        "for specifying the stopping condition"
//
// — and users implement SVM, K-means, and linear/logistic regression
// with them. Template below is exactly that triple; the Train*
// constructors instantiate it per algorithm. Everything executes
// through the RHEEM core, so the same training job runs unchanged on
// the single-node engine or the Spark simulator — the comparison the
// paper's Figure 2 draws.
package ml

import (
	"fmt"
	"math"

	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// Template is the ML application's operator triple (paper Example 1).
type Template struct {
	// Name labels the training job.
	Name string
	// Initialize produces the initial loop state (model parameters).
	Initialize func() ([]data.Record, error)
	// Process appends one iteration's dataflow to the loop body: given
	// the state handle, return the next state handle.
	Process func(lb *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta
	// Iterations is the Loop stopping condition: a fixed iteration
	// count (used when Converged is nil).
	Iterations int
	// Converged, when set, makes the loop a DoWhile: training continues
	// while it returns true, bounded by Iterations.
	Converged plan.CondFunc
}

// Run trains the template on a context and returns the final state.
func (t *Template) Run(ctx *rheem.Context, opts ...rheem.RunOption) ([]data.Record, *rheem.Report, error) {
	if t.Iterations <= 0 {
		return nil, nil, fmt.Errorf("ml: %s: non-positive iteration bound", t.Name)
	}
	init, err := t.Initialize()
	if err != nil {
		return nil, nil, fmt.Errorf("ml: %s: initialize: %w", t.Name, err)
	}
	job := ctx.NewJob(t.Name)
	state := job.ReadCollection("init", init)
	var looped *rheem.DataQuanta
	if t.Converged != nil {
		looped = state.DoWhile(t.Converged, t.Iterations, t.Process)
	} else {
		looped = state.Repeat(t.Iterations, t.Process)
	}
	return looped.Collect(opts...)
}

// Vector helpers shared by the gradient-descent algorithms.

// vecAdd returns a+b (allocating).
func vecAdd(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// vecScale returns k·a (allocating).
func vecScale(a []float64, k float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * k
	}
	return out
}

// dot returns a·b.
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// sumVecField returns a ReduceFunc summing the vector in field i and
// keeping the remaining fields of the first record — the aggregation
// step of every batch gradient algorithm here.
func sumVecField(i int) plan.ReduceFunc {
	return func(a, b data.Record) (data.Record, error) {
		return a.WithField(i, data.Vec(vecAdd(a.Field(i).Vec(), b.Field(i).Vec()))), nil
	}
}

// GradientConfig parameterises the shared batch-gradient-descent
// skeleton.
type GradientConfig struct {
	Iterations   int
	LearningRate float64
	// L2 is the ridge/regularisation strength (0 = none).
	L2 float64
	// Dim is the feature dimensionality.
	Dim int
}

func (c *GradientConfig) defaults() {
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Dim <= 0 {
		c.Dim = 10
	}
}

// gradientTemplate builds the shared full-batch gradient-descent
// dataflow. Points are (label Float, features Vec) records. The loop
// state is one record (iteration Int, weights Vec). Each iteration:
//
//	points × state  →  per-point gradient contributions  →  Σ  →  step
//
// The Cartesian with the single-record state on the RIGHT is the
// broadcast-join idiom: the big side stays partitioned and only the
// tiny weights record is replicated to every worker. (Putting the
// state on the left would serialise the whole dataset into one
// partition on distributed platforms — the classic Spark mistake.)
func gradientTemplate(name string, points []data.Record, cfg GradientConfig,
	pointGrad func(w []float64, label float64, x []float64) []float64) *Template {
	cfg.defaults()
	n := float64(len(points))
	return &Template{
		Name:       name,
		Iterations: cfg.Iterations,
		Initialize: func() ([]data.Record, error) {
			if len(points) == 0 {
				return nil, fmt.Errorf("no training points")
			}
			return []data.Record{data.NewRecord(data.Int(0), data.Vec(make([]float64, cfg.Dim)))}, nil
		},
		Process: func(lb *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
			pts := lb.ReadCollection("points", points)
			// (label, x) × (iter, w) → (iter, w, grad)
			contrib := pts.Cartesian(state).Map(func(r data.Record) (data.Record, error) {
				label := r.Field(0).Float()
				x := r.Field(1).Vec()
				w := r.Field(3).Vec()
				return data.NewRecord(r.Field(2), r.Field(3), data.Vec(pointGrad(w, label, x))), nil
			})
			summed := contrib.Reduce(sumVecField(2))
			return summed.Map(func(r data.Record) (data.Record, error) {
				iter := r.Field(0).Int()
				w := r.Field(1).Vec()
				grad := vecScale(r.Field(2).Vec(), 1/n)
				// Learning-rate decay stabilises the hinge-loss step.
				eta := cfg.LearningRate / (1 + 0.01*float64(iter))
				next := make([]float64, len(w))
				for i := range w {
					next[i] = w[i]*(1-eta*cfg.L2) - eta*grad[i]
				}
				return data.NewRecord(data.Int(iter+1), data.Vec(next)), nil
			})
		},
	}
}

// SVM builds a linear SVM trainer (hinge loss, L2 regularisation,
// full-batch sub-gradient descent — the Pegasos objective) over
// (label ±1, features) points. This is the workload of the paper's
// Figure 2.
func SVM(points []data.Record, cfg GradientConfig) *Template {
	if cfg.L2 == 0 {
		cfg.L2 = 0.01
	}
	return gradientTemplate("svm", points, cfg,
		func(w []float64, label float64, x []float64) []float64 {
			if label*dot(w, x) < 1 {
				return vecScale(x, -label)
			}
			return make([]float64, len(x))
		})
}

// LinearRegression builds a least-squares trainer over (target,
// features) points.
func LinearRegression(points []data.Record, cfg GradientConfig) *Template {
	return gradientTemplate("linreg", points, cfg,
		func(w []float64, y float64, x []float64) []float64 {
			return vecScale(x, dot(w, x)-y)
		})
}

// LogisticRegression builds a binary cross-entropy trainer over
// (label 0/1 or ±1, features) points; ±1 labels are mapped to 0/1.
func LogisticRegression(points []data.Record, cfg GradientConfig) *Template {
	return gradientTemplate("logreg", points, cfg,
		func(w []float64, label float64, x []float64) []float64 {
			y := label
			if y < 0 {
				y = 0
			}
			p := 1 / (1 + math.Exp(-dot(w, x)))
			return vecScale(x, p-y)
		})
}

// Weights extracts the trained weight vector from a gradient
// template's final state.
func Weights(state []data.Record) ([]float64, error) {
	if len(state) != 1 {
		return nil, fmt.Errorf("ml: final state has %d records, want 1", len(state))
	}
	return state[0].Field(1).Vec(), nil
}

// PredictSign classifies a point with a linear model: sign(w·x).
func PredictSign(w, x []float64) float64 {
	if dot(w, x) >= 0 {
		return 1
	}
	return -1
}

// Accuracy scores a linear classifier over (label ±1, features) points.
func Accuracy(w []float64, points []data.Record) float64 {
	if len(points) == 0 {
		return 0
	}
	correct := 0
	for _, p := range points {
		if PredictSign(w, p.Field(1).Vec()) == p.Field(0).Float() {
			correct++
		}
	}
	return float64(correct) / float64(len(points))
}
