package rheemql

import (
	"strconv"
	"strings"
)

// String renders the AST back to query text that Parse accepts and
// that parses to an identical AST — the round-trip property the fuzz
// suite enforces. Everything the parser can produce is printable:
// identifiers survive verbatim (a keyword-shaped word never becomes an
// identifier), string literals cannot contain the quote that would
// need escaping, and numeric literals are printed in the plain
// digits-and-dot form the lexer reads.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(q.From.String())
	if q.Join != nil {
		b.WriteString(" JOIN ")
		b.WriteString(q.Join.Table.String())
		b.WriteString(" ON ")
		b.WriteString(q.Join.LeftCol.String())
		b.WriteString(" = ")
		b.WriteString(q.Join.RightCol.String())
	}
	printComparisons := func(kw string, cmps []Comparison) {
		for i, c := range cmps {
			if i == 0 {
				b.WriteString(" " + kw + " ")
			} else {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	printComparisons("WHERE", q.Where)
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	printComparisons("HAVING", q.Having)
	if q.OrderBy != nil {
		b.WriteString(" ORDER BY ")
		b.WriteString(q.OrderBy.Col.String())
		if q.OrderBy.Desc {
			b.WriteString(" DESC")
		}
	}
	if q.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(q.Limit))
	}
	return b.String()
}

// String renders one projection item.
func (it SelectItem) String() string {
	var s string
	switch {
	case it.Star:
		return "*"
	case it.Agg != "":
		if it.ArgStar {
			s = string(it.Agg) + "(*)"
		} else {
			s = string(it.Agg) + "(" + it.Arg.String() + ")"
		}
	default:
		s = it.Col.String()
	}
	if it.Alias != "" {
		s += " AS " + it.Alias
	}
	return s
}

// String renders the table reference with its alias.
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// String renders one comparison conjunct.
func (c Comparison) String() string {
	s := c.Left.String() + " " + c.Op + " "
	if c.RightCol != nil {
		return s + c.RightCol.String()
	}
	return s + c.RightLit.String()
}

// String renders a literal in re-lexable form.
func (l Literal) String() string {
	switch {
	case l.IsString:
		return "'" + l.Str + "'"
	case l.IsBool:
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	case l.IsInt:
		return strconv.FormatInt(l.Int, 10)
	default:
		// The lexer reads unsigned digits-and-dot numbers only: 'f'
		// formatting never emits an exponent, and a forced trailing ".0"
		// keeps a whole-valued float from re-parsing as an integer.
		s := strconv.FormatFloat(l.Num, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	}
}
