package rheemql

import (
	"reflect"
	"testing"
)

// FuzzRheemQLParse feeds arbitrary query text to the parser. Two
// properties must hold: Parse never panics (it returns errors for
// garbage), and any accepted query pretty-prints to text that parses
// back to the identical AST — so the printer and parser can't drift
// apart, and the AST never holds state the concrete syntax can't
// express.
func FuzzRheemQLParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, b AS bee FROM t x",
		"SELECT t.a FROM t WHERE a = 1 AND b != 'x' AND c <= 2.5",
		"SELECT COUNT(*) FROM t",
		"SELECT k, SUM(v) AS total FROM t GROUP BY k HAVING total > 10 ORDER BY k DESC LIMIT 5",
		"SELECT AVG(v), MIN(v), MAX(v) FROM t WHERE flag = TRUE",
		"SELECT a.x, b.y FROM t a JOIN u b ON a.id = b.id WHERE a.x < b.y",
		"SELECT a FROM t WHERE f = 9223372036854775808",
		"SELECT a FROM t WHERE f = 3. ORDER BY a ASC",
		"SELECT a FROM t LIMIT 007",
		// Invalid inputs keep the error paths in the corpus.
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE a ! 1",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t HAVING a > 1",
		"SELECT SUM(*) FROM t",
		"\x00\xff SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; only panics are bugs
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form of %q does not re-parse: %q: %v", input, printed, err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("round trip changed the AST:\n input  %q\n printed %q\n first  %#v\n second %#v",
				input, printed, q, q2)
		}
		// The printer must also be a fixed point of itself.
		if printed2 := q2.String(); printed2 != printed {
			t.Fatalf("printer is not stable: %q -> %q", printed, printed2)
		}
	})
}
