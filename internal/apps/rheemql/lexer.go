// Package rheemql is RHEEM's declarative layer: a small SQL dialect
// compiled onto logical plans. The paper's application layer foresees
// exactly this ("an application developer could also expose a
// declarative language for users to define their tasks (e.g., queries).
// The application is then responsible for translating a declarative
// query into a logical plan", §3.2).
//
// Supported shape:
//
//	SELECT item [, item ...]
//	FROM table [alias] [JOIN table [alias] ON a.col = b.col]
//	[WHERE comparison [AND comparison ...]]
//	[GROUP BY col [, col ...]]
//	[ORDER BY col [ASC|DESC]]
//	[LIMIT n]
//
// where items are columns, * or aggregates (COUNT(*), COUNT(col),
// SUM/AVG/MIN/MAX(col)), optionally aliased with AS; comparisons use
// =, !=, <, <=, >, >= between columns and literals (numbers, 'strings',
// TRUE/FALSE) or between two columns.
package rheemql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"JOIN": true, "ON": true, "AS": true, "ASC": true, "DESC": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"TRUE": true, "FALSE": true,
}

// token is one lexical unit; Text is uppercased for keywords.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenises a query, failing on unterminated strings or stray
// runes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(word), start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case unicode.IsDigit(c):
			start := i
			for i < len(input) && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			for i < len(input) && input[i] != '\'' {
				i++
			}
			if i >= len(input) {
				return nil, fmt.Errorf("rheemql: unterminated string at %d", start)
			}
			toks = append(toks, token{tokString, input[start+1 : i], start})
			i++
		case strings.ContainsRune("<>!=", c):
			start := i
			i++
			if i < len(input) && input[i] == '=' {
				i++
			}
			op := input[start:i]
			if op == "!" {
				return nil, fmt.Errorf("rheemql: bad operator %q at %d", op, start)
			}
			toks = append(toks, token{tokSymbol, op, start})
		case strings.ContainsRune(",().*", c):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("rheemql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}
