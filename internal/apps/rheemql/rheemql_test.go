package rheemql

import (
	"strings"
	"testing"

	"rheem"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/sparksim"
)

func testCtx(t *testing.T) *rheem.Context {
	t.Helper()
	ctx, err := rheem.NewContext(rheem.Config{
		Spark: sparksim.Config{JobOverhead: 1e5, TaskOverhead: 1e4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func taxCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	cat := NewCatalog()
	recs := datagen.Tax(datagen.TaxConfig{N: n, Zips: 10, ErrorRate: 0, Seed: 1})
	if err := cat.Register("tax", datagen.TaxSchema, recs); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE x >= 1.5 AND y != 'hi'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[0].text != "SELECT" || toks[0].kind != tokKeyword {
		t.Errorf("first token %+v", toks[0])
	}
	found := false
	for _, tok := range toks {
		if tok.kind == tokSymbol && tok.text == ">=" {
			found = true
		}
	}
	if !found {
		t.Error(">= not lexed as one token")
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT a ! b"); err == nil {
		t.Error("lone ! accepted")
	}
	if _, err := lex("SELECT a ; b"); err == nil {
		t.Error("stray rune accepted")
	}
	_ = kinds
}

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`SELECT zip, COUNT(*) AS n, AVG(salary) FROM tax t
		WHERE state = 'NY' AND salary > 50000
		GROUP BY zip ORDER BY n DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 3 || q.Select[1].Alias != "n" || q.Select[2].Agg != AggAvg {
		t.Errorf("select = %+v", q.Select)
	}
	if q.From.Name != "tax" || q.From.Alias != "t" {
		t.Errorf("from = %+v", q.From)
	}
	if len(q.Where) != 2 || q.Where[0].RightLit.Str != "NY" {
		t.Errorf("where = %+v", q.Where)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Column != "zip" {
		t.Errorf("group by = %+v", q.GroupBy)
	}
	if q.OrderBy == nil || !q.OrderBy.Desc {
		t.Errorf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseJoin(t *testing.T) {
	q, err := Parse("SELECT a.x, b.y FROM a JOIN b ON a.id = b.aid WHERE a.x < b.y")
	if err != nil {
		t.Fatal(err)
	}
	if q.Join == nil || q.Join.Table.Name != "b" {
		t.Fatalf("join = %+v", q.Join)
	}
	if q.Join.LeftCol.String() != "a.id" || q.Join.RightCol.String() != "b.aid" {
		t.Errorf("on = %s, %s", q.Join.LeftCol, q.Join.RightCol)
	}
	if q.Where[0].RightCol == nil {
		t.Error("column-column comparison lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t GROUP zip",
		"SELECT a FROM t extra garbage (",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
}

func TestSelectWhereProjection(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 500)
	recs, schema, _, err := Run(ctx, cat, "SELECT id, salary FROM tax WHERE salary > 150000")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Spec() != "id:int,salary:float" {
		t.Errorf("schema = %s", schema)
	}
	if len(recs) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range recs {
		if r.Field(1).Float() <= 150000 {
			t.Fatalf("filter failed: %s", r)
		}
	}
}

func TestSelectStar(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 50)
	recs, schema, _, err := Run(ctx, cat, "SELECT * FROM tax LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || schema.Len() != datagen.TaxSchema.Len() {
		t.Errorf("star: %d rows, schema %s", len(recs), schema)
	}
}

func TestGroupByAggregates(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 1000)
	recs, schema, _, err := Run(ctx, cat,
		"SELECT state, COUNT(*) AS n, AVG(salary) AS avg_sal, MAX(rate) AS maxr FROM tax GROUP BY state ORDER BY state")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Spec() != "state:string,n:int,avg_sal:float,maxr:float" {
		t.Errorf("schema = %s", schema)
	}
	var total int64
	prev := ""
	for _, r := range recs {
		total += r.Field(1).Int()
		if r.Field(2).Float() < 20000 || r.Field(2).Float() > 200000 {
			t.Errorf("implausible avg: %s", r)
		}
		if r.Field(0).Str() < prev {
			t.Error("ORDER BY state violated")
		}
		prev = r.Field(0).Str()
	}
	if total != 1000 {
		t.Errorf("counts sum to %d", total)
	}
}

func TestGlobalAggregate(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 300)
	recs, _, _, err := Run(ctx, cat, "SELECT COUNT(*), MIN(salary), MAX(salary) FROM tax")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d rows for global aggregate", len(recs))
	}
	if recs[0].Field(0).Int() != 300 {
		t.Errorf("count = %s", recs[0])
	}
	if recs[0].Field(1).Float() >= recs[0].Field(2).Float() {
		t.Errorf("min >= max: %s", recs[0])
	}
}

func TestJoinQuery(t *testing.T) {
	ctx := testCtx(t)
	cat := NewCatalog()
	people := data.MustSchema(
		data.Field{Name: "id", Type: data.KindInt},
		data.Field{Name: "dept", Type: data.KindInt},
		data.Field{Name: "name", Type: data.KindString},
	)
	depts := data.MustSchema(
		data.Field{Name: "did", Type: data.KindInt},
		data.Field{Name: "dname", Type: data.KindString},
	)
	if err := cat.Register("people", people, []data.Record{
		data.NewRecord(data.Int(1), data.Int(10), data.Str("ann")),
		data.NewRecord(data.Int(2), data.Int(20), data.Str("bob")),
		data.NewRecord(data.Int(3), data.Int(10), data.Str("cyd")),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("depts", depts, []data.Record{
		data.NewRecord(data.Int(10), data.Str("eng")),
		data.NewRecord(data.Int(20), data.Str("ops")),
	}); err != nil {
		t.Fatal(err)
	}
	recs, schema, _, err := Run(ctx, cat,
		"SELECT name, dname FROM people p JOIN depts d ON p.dept = d.did WHERE dname = 'eng' ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Spec() != "name:string,dname:string" {
		t.Errorf("schema = %s", schema)
	}
	if len(recs) != 2 || recs[0].Field(0).Str() != "ann" || recs[1].Field(0).Str() != "cyd" {
		t.Errorf("join rows = %v", recs)
	}
	// Aggregation over a join.
	recs, _, _, err = Run(ctx, cat,
		"SELECT dname, COUNT(*) AS n FROM people p JOIN depts d ON p.dept = d.did GROUP BY dname ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Field(1).Int() != 2 {
		t.Errorf("join-aggregate rows = %v", recs)
	}
}

func TestHaving(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 1000)
	recs, schema, _, err := Run(ctx, cat,
		"SELECT state, COUNT(*) AS n FROM tax GROUP BY state HAVING n >= 100 ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Spec() != "state:string,n:int" {
		t.Errorf("schema = %s", schema)
	}
	if len(recs) == 0 {
		t.Fatal("HAVING filtered everything")
	}
	for _, r := range recs {
		if r.Field(1).Int() < 100 {
			t.Errorf("HAVING violated: %s", r)
		}
	}
	// Sanity: without HAVING there are more groups.
	all, _, _, err := Run(ctx, cat, "SELECT state, COUNT(*) AS n FROM tax GROUP BY state")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= len(recs) {
		t.Skip("all groups pass the threshold at this seed")
	}
}

func TestHavingOnDerivedAggregateName(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 500)
	recs, _, _, err := Run(ctx, cat,
		"SELECT zip, AVG(salary) FROM tax GROUP BY zip HAVING avg_salary > 100000")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Field(1).Float() <= 100000 {
			t.Errorf("derived-name HAVING violated: %s", r)
		}
	}
}

func TestHavingErrors(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 10)
	bad := []string{
		"SELECT id FROM tax HAVING id > 1",                          // no aggregation
		"SELECT state, COUNT(*) FROM tax GROUP BY state HAVING ghost > 1", // unknown output column
		"SELECT state, COUNT(*) AS n FROM tax GROUP BY state HAVING n > salary", // column RHS
	}
	for _, q := range bad {
		if _, _, _, err := Run(ctx, cat, q); err == nil {
			t.Errorf("query %q accepted", q)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 10)
	bad := []string{
		"SELECT nope FROM tax",
		"SELECT id FROM ghost",
		"SELECT id FROM tax ORDER BY salary", // not in output
		"SELECT salary FROM tax GROUP BY zip",
		"SELECT * , COUNT(*) FROM tax",
		"SELECT t.id FROM tax x WHERE q.id = 1",
	}
	for _, q := range bad {
		if _, _, _, err := Run(ctx, cat, q); err == nil {
			t.Errorf("query %q accepted", q)
		}
	}
	if err := cat.Register("tax", datagen.TaxSchema, nil); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestQueryRunsOnEveryPlatform(t *testing.T) {
	ctx := testCtx(t)
	cat := taxCatalog(t, 400)
	const q = "SELECT zip, COUNT(*) AS n FROM tax GROUP BY zip ORDER BY zip"
	var want string
	for _, p := range ctx.Registry().Platforms() {
		recs, _, _, err := Run(ctx, cat, q, rheem.OnPlatform(p.ID()))
		if err != nil {
			t.Fatalf("%s: %v", p.ID(), err)
		}
		var sb strings.Builder
		for _, r := range recs {
			sb.WriteString(r.String())
		}
		if want == "" {
			want = sb.String()
		} else if sb.String() != want {
			t.Errorf("%s produced different rows", p.ID())
		}
	}
	if want == "" {
		t.Fatal("no platforms ran")
	}
}
