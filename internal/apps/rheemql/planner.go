package rheemql

import (
	"fmt"
	"strings"

	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// Catalog names the datasets queries can read.
type Catalog struct {
	tables map[string]*TableDef
}

// TableDef is one queryable dataset.
type TableDef struct {
	Schema  *data.Schema
	Records []data.Record
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*TableDef{}}
}

// Register adds a dataset.
func (c *Catalog) Register(name string, schema *data.Schema, recs []data.Record) error {
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("rheemql: table %q already registered", name)
	}
	c.tables[name] = &TableDef{Schema: schema, Records: recs}
	return nil
}

// Compiled is a query lowered to a logical plan.
type Compiled struct {
	Plan   *plan.Plan
	Schema *data.Schema // output schema
}

// binding resolves column references against the (possibly joined)
// row layout.
type binding struct {
	qualifier string // table alias
	schema    *data.Schema
	offset    int
}

type env struct{ binds []binding }

func (e *env) resolve(ref ColumnRef) (int, data.Kind, error) {
	var hits []int
	var kind data.Kind
	for _, b := range e.binds {
		if ref.Table != "" && ref.Table != b.qualifier {
			continue
		}
		if i := b.schema.IndexOf(ref.Column); i >= 0 {
			hits = append(hits, b.offset+i)
			kind = b.schema.Field(i).Type
		}
	}
	switch len(hits) {
	case 0:
		return 0, 0, fmt.Errorf("rheemql: unknown column %s", ref)
	case 1:
		return hits[0], kind, nil
	default:
		return 0, 0, fmt.Errorf("rheemql: ambiguous column %s", ref)
	}
}

// Compile lowers a parsed query onto a logical plan over the catalog.
func Compile(q *Query, cat *Catalog) (*Compiled, error) {
	b := plan.NewBuilder("rheemql")
	e := &env{}

	fromDef, ok := cat.tables[q.From.Name]
	if !ok {
		return nil, fmt.Errorf("rheemql: unknown table %q", q.From.Name)
	}
	cur := b.Source(q.From.Name, plan.Collection(fromDef.Records))
	cur.CardHint = int64(len(fromDef.Records))
	e.binds = append(e.binds, binding{qualifier: q.From.aliasOrName(), schema: fromDef.Schema})

	if q.Join != nil {
		joinDef, ok := cat.tables[q.Join.Table.Name]
		if !ok {
			return nil, fmt.Errorf("rheemql: unknown table %q", q.Join.Table.Name)
		}
		right := b.Source(q.Join.Table.Name, plan.Collection(joinDef.Records))
		right.CardHint = int64(len(joinDef.Records))
		rightBind := binding{qualifier: q.Join.Table.aliasOrName(), schema: joinDef.Schema, offset: fromDef.Schema.Len()}
		// Resolve the ON columns against each side independently.
		leftEnv := &env{binds: []binding{e.binds[0]}}
		rightEnv := &env{binds: []binding{{qualifier: rightBind.qualifier, schema: joinDef.Schema}}}
		li, _, err := leftEnv.resolve(q.Join.LeftCol)
		if err != nil {
			// The user may have written the sides in either order.
			li, _, err = leftEnv.resolve(q.Join.RightCol)
			if err != nil {
				return nil, fmt.Errorf("rheemql: ON clause: %w", err)
			}
			q.Join.LeftCol, q.Join.RightCol = q.Join.RightCol, q.Join.LeftCol
		}
		ri, _, err := rightEnv.resolve(q.Join.RightCol)
		if err != nil {
			return nil, fmt.Errorf("rheemql: ON clause: %w", err)
		}
		cur = b.Join(cur, right, plan.FieldKey(li), plan.FieldKey(ri))
		e.binds = append(e.binds, rightBind)
	}

	if len(q.Where) > 0 {
		preds := make([]func(data.Record) (bool, error), 0, len(q.Where))
		for _, cmp := range q.Where {
			p, err := compilePredicate(cmp, e)
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		}
		f := b.Filter(cur, func(r data.Record) (bool, error) {
			for _, p := range preds {
				ok, err := p(r)
				if err != nil || !ok {
					return false, err
				}
			}
			return true, nil
		})
		f.Selectivity = 0.3
		cur = f
	}

	var outSchema *data.Schema
	hasAgg := false
	for _, it := range q.Select {
		if it.Agg != "" {
			hasAgg = true
		}
	}

	switch {
	case hasAgg || len(q.GroupBy) > 0:
		var err error
		cur, outSchema, err = compileAggregate(b, cur, q, e)
		if err != nil {
			return nil, err
		}
	default:
		var err error
		cur, outSchema, err = compileProjection(b, cur, q, e)
		if err != nil {
			return nil, err
		}
	}

	if len(q.Having) > 0 {
		preds := make([]func(data.Record) (bool, error), 0, len(q.Having))
		for _, cmp := range q.Having {
			idx := outSchema.IndexOf(cmp.Left.Column)
			if idx < 0 {
				return nil, fmt.Errorf("rheemql: HAVING column %s is not in the output", cmp.Left)
			}
			lit, err := literalValue(*cmp.RightLit, outSchema.Field(idx).Type)
			if err != nil {
				return nil, err
			}
			op := cmp.Op
			preds = append(preds, func(r data.Record) (bool, error) {
				c := data.Compare(r.Field(idx), lit)
				switch op {
				case "=":
					return c == 0, nil
				case "!=":
					return c != 0, nil
				case "<":
					return c < 0, nil
				case "<=":
					return c <= 0, nil
				case ">":
					return c > 0, nil
				case ">=":
					return c >= 0, nil
				}
				return false, fmt.Errorf("rheemql: unknown operator %q", op)
			})
		}
		cur = b.Filter(cur, func(r data.Record) (bool, error) {
			for _, p := range preds {
				ok, err := p(r)
				if err != nil || !ok {
					return false, err
				}
			}
			return true, nil
		})
	}

	if q.OrderBy != nil {
		idx := outSchema.IndexOf(q.OrderBy.Col.Column)
		if idx < 0 {
			return nil, fmt.Errorf("rheemql: ORDER BY column %s is not in the output", q.OrderBy.Col)
		}
		cur = b.Sort(cur, plan.FieldKey(idx), q.OrderBy.Desc)
	}
	if q.Limit >= 0 {
		cur = b.Sample(cur, q.Limit)
	}
	b.Collect(cur)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Compiled{Plan: p, Schema: outSchema}, nil
}

// compilePredicate lowers one comparison to a filter function.
func compilePredicate(cmp Comparison, e *env) (func(data.Record) (bool, error), error) {
	li, kind, err := e.resolve(cmp.Left)
	if err != nil {
		return nil, err
	}
	var rightOf func(data.Record) data.Value
	if cmp.RightCol != nil {
		ri, _, err := e.resolve(*cmp.RightCol)
		if err != nil {
			return nil, err
		}
		rightOf = func(r data.Record) data.Value { return r.Field(ri) }
	} else {
		lit, err := literalValue(*cmp.RightLit, kind)
		if err != nil {
			return nil, err
		}
		rightOf = func(data.Record) data.Value { return lit }
	}
	op := cmp.Op
	return func(r data.Record) (bool, error) {
		c := data.Compare(r.Field(li), rightOf(r))
		switch op {
		case "=":
			return c == 0, nil
		case "!=":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
		return false, fmt.Errorf("rheemql: unknown operator %q", op)
	}, nil
}

// literalValue coerces a literal to the compared column's kind.
func literalValue(l Literal, kind data.Kind) (data.Value, error) {
	switch {
	case l.IsString:
		return data.Str(l.Str), nil
	case l.IsBool:
		return data.Bool(l.Bool), nil
	case kind == data.KindInt && l.IsInt:
		return data.Int(l.Int), nil
	default:
		return data.Float(l.Num), nil
	}
}

// compileProjection lowers a plain SELECT list.
func compileProjection(b *plan.Builder, cur *plan.Operator, q *Query, e *env) (*plan.Operator, *data.Schema, error) {
	if len(q.Select) == 1 && q.Select[0].Star {
		// SELECT *: pass-through; output schema is the concatenation.
		var fields []data.Field
		for _, bind := range e.binds {
			for _, f := range bind.schema.Fields() {
				name := f.Name
				for hasField(fields, name) {
					name = bind.qualifier + "_" + name
				}
				fields = append(fields, data.Field{Name: name, Type: f.Type})
			}
		}
		s, err := data.NewSchema(fields...)
		if err != nil {
			return nil, nil, err
		}
		return cur, s, nil
	}
	idx := make([]int, len(q.Select))
	fields := make([]data.Field, len(q.Select))
	for i, it := range q.Select {
		if it.Star || it.Agg != "" {
			return nil, nil, fmt.Errorf("rheemql: mixed star/aggregate projection")
		}
		pos, kind, err := e.resolve(it.Col)
		if err != nil {
			return nil, nil, err
		}
		idx[i] = pos
		name := it.Alias
		if name == "" {
			name = it.Col.Column
		}
		for hasField(fields[:i], name) {
			name = "_" + name
		}
		fields[i] = data.Field{Name: name, Type: kind}
	}
	s, err := data.NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}
	out := b.Map(cur, func(r data.Record) (data.Record, error) {
		return r.Project(idx...), nil
	})
	return out, s, nil
}

func hasField(fields []data.Field, name string) bool {
	for _, f := range fields {
		if f.Name == name {
			return true
		}
	}
	return false
}

// compileAggregate lowers GROUP BY / global aggregation.
func compileAggregate(b *plan.Builder, cur *plan.Operator, q *Query, e *env) (*plan.Operator, *data.Schema, error) {
	groupIdx := make([]int, len(q.GroupBy))
	groupSet := map[string]int{} // column name → position in GroupBy
	for i, col := range q.GroupBy {
		pos, _, err := e.resolve(col)
		if err != nil {
			return nil, nil, err
		}
		groupIdx[i] = pos
		groupSet[col.Column] = i
	}

	// Validate and type the select list.
	type outCol struct {
		groupPos int // ≥0: group column (position in groupIdx)
		agg      AggFunc
		argIdx   int // resolved field for the aggregate argument
		argStar  bool
		kind     data.Kind
		name     string
	}
	outs := make([]outCol, len(q.Select))
	for i, it := range q.Select {
		switch {
		case it.Star:
			return nil, nil, fmt.Errorf("rheemql: SELECT * with aggregation")
		case it.Agg == "":
			gp, ok := groupSet[it.Col.Column]
			if !ok {
				return nil, nil, fmt.Errorf("rheemql: column %s is neither aggregated nor grouped", it.Col)
			}
			_, kind, err := e.resolve(it.Col)
			if err != nil {
				return nil, nil, err
			}
			name := it.Alias
			if name == "" {
				name = it.Col.Column
			}
			outs[i] = outCol{groupPos: gp, agg: "", kind: kind, name: name}
		default:
			oc := outCol{groupPos: -1, agg: it.Agg, kind: data.KindFloat}
			if it.ArgStar {
				oc.argStar = true
				oc.kind = data.KindInt
			} else {
				pos, kind, err := e.resolve(it.Arg)
				if err != nil {
					return nil, nil, err
				}
				oc.argIdx = pos
				switch it.Agg {
				case AggCount:
					oc.kind = data.KindInt
				case AggMin, AggMax:
					oc.kind = kind
				}
			}
			oc.name = it.Alias
			if oc.name == "" {
				arg := "star"
				if !oc.argStar {
					arg = it.Arg.Column
				}
				oc.name = strings.ToLower(string(it.Agg)) + "_" + arg
			}
			outs[i] = oc
		}
	}
	fields := make([]data.Field, len(outs))
	for i, oc := range outs {
		name := oc.name
		for hasField(fields[:i], name) {
			name = "_" + name
		}
		fields[i] = data.Field{Name: name, Type: oc.kind}
	}
	schema, err := data.NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}

	key := func(r data.Record) (data.Value, error) {
		if len(groupIdx) == 0 {
			return data.Int(0), nil
		}
		if len(groupIdx) == 1 {
			return r.Field(groupIdx[0]), nil
		}
		h := uint64(0)
		for _, gi := range groupIdx {
			h = h*1099511628211 ^ data.Hash(r.Field(gi), 0)
		}
		return data.Int(int64(h)), nil
	}

	grouped := b.GroupBy(cur, key, func(_ data.Value, group []data.Record) ([]data.Record, error) {
		vals := make([]data.Value, len(outs))
		for i, oc := range outs {
			if oc.agg == "" {
				vals[i] = group[0].Field(groupIdx[oc.groupPos])
				continue
			}
			switch oc.agg {
			case AggCount:
				if oc.argStar {
					vals[i] = data.Int(int64(len(group)))
				} else {
					n := int64(0)
					for _, r := range group {
						if !r.Field(oc.argIdx).IsNull() {
							n++
						}
					}
					vals[i] = data.Int(n)
				}
			case AggSum, AggAvg:
				var sum float64
				n := 0
				for _, r := range group {
					v := r.Field(oc.argIdx)
					if v.IsNull() {
						continue
					}
					sum += v.Float()
					n++
				}
				if oc.agg == AggAvg && n > 0 {
					sum /= float64(n)
				}
				vals[i] = data.Float(sum)
			case AggMin, AggMax:
				var best data.Value
				for _, r := range group {
					v := r.Field(oc.argIdx)
					if v.IsNull() {
						continue
					}
					if best.IsNull() ||
						(oc.agg == AggMin && data.Compare(v, best) < 0) ||
						(oc.agg == AggMax && data.Compare(v, best) > 0) {
						best = v
					}
				}
				vals[i] = best
			}
		}
		return []data.Record{data.NewRecord(vals...)}, nil
	})
	if len(groupIdx) > 0 {
		grouped.DistinctKeys = 0 // let the estimator guess
	}
	return grouped, schema, nil
}

// Run parses, compiles, and executes a query on a context.
func Run(ctx *rheem.Context, cat *Catalog, sql string, opts ...rheem.RunOption) ([]data.Record, *data.Schema, *rheem.Report, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	compiled, err := Compile(q, cat)
	if err != nil {
		return nil, nil, nil, err
	}
	recs, rep, err := ctx.Execute(compiled.Plan, opts...)
	if err != nil {
		return nil, nil, rep, err
	}
	return recs, compiled.Schema, rep, nil
}
