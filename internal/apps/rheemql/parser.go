package rheemql

import (
	"fmt"
	"strconv"
)

// ColumnRef names a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table  string // alias or table name; "" = unqualified
	Column string
}

// String renders the reference.
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// AggFunc names an aggregate function.
type AggFunc string

// The supported aggregates.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// SelectItem is one projection: a column, a star, or an aggregate.
type SelectItem struct {
	Star  bool
	Col   ColumnRef
	Agg   AggFunc   // "" for plain columns
	Arg   ColumnRef // aggregate argument; Star for COUNT(*)
	ArgStar bool
	Alias string
}

// Literal is a constant in a comparison.
type Literal struct {
	IsString bool
	IsBool   bool
	Bool     bool
	Str      string
	Num      float64
	IsInt    bool
	Int      int64
}

// Comparison is one WHERE conjunct: Left op (column | literal).
type Comparison struct {
	Left     ColumnRef
	Op       string // =, !=, <, <=, >, >=
	RightCol *ColumnRef
	RightLit *Literal
}

// TableRef names a catalog table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// aliasOrName returns the effective alias.
func (t TableRef) aliasOrName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an equi-join.
type JoinClause struct {
	Table    TableRef
	LeftCol  ColumnRef
	RightCol ColumnRef
}

// OrderItem is the ORDER BY clause.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// Query is the parsed AST.
type Query struct {
	Select  []SelectItem
	From    TableRef
	Join    *JoinClause
	Where   []Comparison
	GroupBy []ColumnRef
	// Having filters aggregated rows; comparisons reference output
	// columns (aliases or derived aggregate names) and literals.
	Having  []Comparison
	OrderBy *OrderItem
	Limit   int // -1 = none
}

// Parse compiles query text to an AST.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("rheemql: trailing input at %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, fmt.Errorf("rheemql: expected %q, found %q at %d", text, p.cur().text, p.cur().pos)
	}
	t := p.cur()
	p.i++
	return t, nil
}

func (p *parser) tryEat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1}
	if _, err := p.eat(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.tryEat(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.eat(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	q.From = from

	if p.tryEat(tokKeyword, "JOIN") {
		jt, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		l, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat(tokSymbol, "="); err != nil {
			return nil, err
		}
		r, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		q.Join = &JoinClause{Table: jt, LeftCol: l, RightCol: r}
	}

	if p.tryEat(tokKeyword, "WHERE") {
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cmp)
			if !p.tryEat(tokKeyword, "AND") {
				break
			}
		}
	}

	if p.tryEat(tokKeyword, "GROUP") {
		if _, err := p.eat(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.tryEat(tokSymbol, ",") {
				break
			}
		}
	}

	if p.tryEat(tokKeyword, "HAVING") {
		if len(q.GroupBy) == 0 {
			hasAgg := false
			for _, it := range q.Select {
				if it.Agg != "" {
					hasAgg = true
				}
			}
			if !hasAgg {
				return nil, fmt.Errorf("rheemql: HAVING without GROUP BY or aggregates")
			}
		}
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			if cmp.RightCol != nil {
				return nil, fmt.Errorf("rheemql: HAVING supports only literal comparisons")
			}
			q.Having = append(q.Having, cmp)
			if !p.tryEat(tokKeyword, "AND") {
				break
			}
		}
	}

	if p.tryEat(tokKeyword, "ORDER") {
		if _, err := p.eat(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		item := &OrderItem{Col: col}
		if p.tryEat(tokKeyword, "DESC") {
			item.Desc = true
		} else {
			p.tryEat(tokKeyword, "ASC")
		}
		q.OrderBy = item
	}

	if p.tryEat(tokKeyword, "LIMIT") {
		n, err := p.eat(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, fmt.Errorf("rheemql: bad LIMIT %q", n.text)
		}
		q.Limit = limit
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.tryEat(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// Aggregate?
	if t := p.cur(); t.kind == tokKeyword {
		switch AggFunc(t.text) {
		case AggCount, AggSum, AggAvg, AggMin, AggMax:
			agg := AggFunc(t.text)
			p.i++
			if _, err := p.eat(tokSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: agg}
			if p.tryEat(tokSymbol, "*") {
				if agg != AggCount {
					return SelectItem{}, fmt.Errorf("rheemql: %s(*) is not valid", agg)
				}
				item.ArgStar = true
			} else {
				arg, err := p.parseColumnRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Arg = arg
			}
			if _, err := p.eat(tokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			if p.tryEat(tokKeyword, "AS") {
				a, err := p.eat(tokIdent, "")
				if err != nil {
					return SelectItem{}, err
				}
				item.Alias = a.text
			}
			return item, nil
		}
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: col}
	if p.tryEat(tokKeyword, "AS") {
		a, err := p.eat(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.eat(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name.text}
	if p.at(tokIdent, "") {
		alias := p.cur()
		p.i++
		ref.Alias = alias.text
	}
	return ref, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	first, err := p.eat(tokIdent, "")
	if err != nil {
		return ColumnRef{}, err
	}
	if p.tryEat(tokSymbol, ".") {
		col, err := p.eat(tokIdent, "")
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first.text, Column: col.text}, nil
	}
	return ColumnRef{Column: first.text}, nil
}

func (p *parser) parseComparison() (Comparison, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return Comparison{}, err
	}
	op := p.cur()
	switch op.text {
	case "=", "!=", "<", "<=", ">", ">=":
		p.i++
	default:
		return Comparison{}, fmt.Errorf("rheemql: expected comparison operator, found %q at %d", op.text, op.pos)
	}
	cmp := Comparison{Left: left, Op: op.text}
	t := p.cur()
	switch t.kind {
	case tokIdent:
		rc, err := p.parseColumnRef()
		if err != nil {
			return Comparison{}, err
		}
		cmp.RightCol = &rc
	case tokNumber:
		p.i++
		if i64, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			cmp.RightLit = &Literal{IsInt: true, Int: i64, Num: float64(i64)}
		} else {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Comparison{}, fmt.Errorf("rheemql: bad number %q", t.text)
			}
			cmp.RightLit = &Literal{Num: f}
		}
	case tokString:
		p.i++
		cmp.RightLit = &Literal{IsString: true, Str: t.text}
	case tokKeyword:
		if t.text == "TRUE" || t.text == "FALSE" {
			p.i++
			cmp.RightLit = &Literal{IsBool: true, Bool: t.text == "TRUE"}
		} else {
			return Comparison{}, fmt.Errorf("rheemql: unexpected %q in comparison", t.text)
		}
	default:
		return Comparison{}, fmt.Errorf("rheemql: unexpected %q in comparison", t.text)
	}
	return cmp, nil
}
