package rheemql

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sqlishGen produces strings biased toward SQL-looking content plus
// noise, to exercise the lexer's error paths without panics.
type sqlishGen struct{ S string }

func (sqlishGen) Generate(r *rand.Rand, _ int) reflect.Value {
	fragments := []string{
		"SELECT", "FROM", "WHERE", " ", ",", "(", ")", "*", ".",
		"tax", "zip", "42", "3.14", "'str'", "<=", ">=", "!=", "=",
		"'unterminated", "@", "#", "a_b", "AND", "GROUP BY",
	}
	n := r.Intn(12)
	s := ""
	for i := 0; i < n; i++ {
		s += fragments[r.Intn(len(fragments))]
	}
	return reflect.ValueOf(sqlishGen{S: s})
}

// TestQuickLexerTotal: for arbitrary input the lexer either errors or
// returns a token stream terminated by exactly one EOF, never panics,
// and every non-EOF token carries non-empty text.
func TestQuickLexerTotal(t *testing.T) {
	f := func(g sqlishGen) bool {
		toks, err := lex(g.S)
		if err != nil {
			return true
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			return false
		}
		for _, tok := range toks[:len(toks)-1] {
			if tok.kind == tokEOF {
				return false // EOF mid-stream
			}
			if tok.text == "" && tok.kind != tokString {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserNeverPanics: the parser returns an AST or an error for
// arbitrary lexable input, never panicking.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(g sqlishGen) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(g.S)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
