// Job specifications. The wire format cannot carry Go UDFs, so a
// submitted job names either a RheemQL query over the server's shared
// catalog or a parametric built-in workload whose plan the service
// constructs deterministically from the spec — deterministic enough
// that the chaos suite can recompute every job's expected output
// offline and demand byte identity from whatever the server returns.

package service

import (
	"fmt"
	"time"

	"rheem/internal/apps/rheemql"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
)

// Spec kinds.
const (
	KindSQL      = "sql"
	KindWorkload = "workload"
)

// Built-in workload names.
const (
	WorkloadWordcount = "wordcount"
	WorkloadSensor    = "sensor"
	WorkloadFanout    = "fanout"
)

// Spec describes what a job computes.
type Spec struct {
	// Kind is "sql" (Query over the server catalog) or "workload"
	// (a parametric built-in).
	Kind string `json:"kind"`
	// Query is the RheemQL text for Kind "sql".
	Query string `json:"query,omitempty"`
	// Workload names the built-in for Kind "workload": "wordcount",
	// "sensor" or "fanout".
	Workload string `json:"workload,omitempty"`
	// N sizes the workload's generated input (records). 0 picks a
	// workload-specific default.
	N int `json:"n,omitempty"`
	// Seed makes the generated input reproducible; the same (workload,
	// n, seed, branches, wells) spec always computes the same output.
	Seed uint64 `json:"seed,omitempty"`
	// Branches is the fanout workload's branch count (default 4).
	Branches int `json:"branches,omitempty"`
	// Wells is the sensor workload's group count (default 32).
	Wells int `json:"wells,omitempty"`
}

// Request is the job-submission payload.
type Request struct {
	// Tenant is the submitting tenant's identity; "" maps to "default".
	Tenant string `json:"tenant,omitempty"`
	// Name labels the job in statuses and /runs; "" derives one from
	// the spec.
	Name string `json:"name,omitempty"`
	Spec Spec   `json:"spec"`

	// DeadlineMS bounds the whole job (queue wait excluded) in
	// milliseconds; 0 uses the service default, and values above the
	// service maximum are clamped to it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// AtomTimeoutMS bounds each execution attempt of a single task
	// atom; 0 uses the service default.
	AtomTimeoutMS int64 `json:"atom_timeout_ms,omitempty"`
	// Platform pins the job to one platform instead of letting the
	// optimizer choose.
	Platform string `json:"platform,omitempty"`
	// Shards enables intra-atom data parallelism (see rheem.WithShards).
	Shards int `json:"shards,omitempty"`
	// NoFailover disables cross-platform failover for this job
	// (failover is on by default — a service survives platform trouble).
	NoFailover bool `json:"no_failover,omitempty"`
}

func (r *Request) normalize() {
	if r.Tenant == "" {
		r.Tenant = "default"
	}
	if r.Name == "" {
		switch r.Spec.Kind {
		case KindSQL:
			r.Name = "sql"
		default:
			r.Name = r.Spec.Workload
		}
	}
}

func (r *Request) deadline(def, max time.Duration) time.Duration {
	d := time.Duration(r.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// Validate rejects malformed requests before they cost anything.
func (r *Request) Validate() error {
	if r.DeadlineMS < 0 || r.AtomTimeoutMS < 0 {
		return fmt.Errorf("service: negative deadline")
	}
	if r.Spec.N < 0 || r.Spec.Branches < 0 || r.Spec.Wells < 0 {
		return fmt.Errorf("service: negative workload size")
	}
	switch r.Spec.Kind {
	case KindSQL:
		if r.Spec.Query == "" {
			return fmt.Errorf("service: sql spec needs a query")
		}
	case KindWorkload:
		switch r.Spec.Workload {
		case WorkloadWordcount, WorkloadSensor, WorkloadFanout:
		default:
			return fmt.Errorf("service: unknown workload %q", r.Spec.Workload)
		}
	default:
		return fmt.Errorf("service: unknown spec kind %q (want %q or %q)", r.Spec.Kind, KindSQL, KindWorkload)
	}
	return nil
}

// BuildPlan lowers the spec to a logical plan named name, compiling
// SQL against cat. Building is deterministic: the same spec always
// yields a plan computing the same output.
func (s *Spec) BuildPlan(name string, cat *rheemql.Catalog) (*plan.Plan, error) {
	switch s.Kind {
	case KindSQL:
		q, err := rheemql.Parse(s.Query)
		if err != nil {
			return nil, err
		}
		c, err := rheemql.Compile(q, cat)
		if err != nil {
			return nil, err
		}
		return c.Plan, nil
	case KindWorkload:
		switch s.Workload {
		case WorkloadWordcount:
			return wordcountPlan(name, s.sized(2000), s.Seed)
		case WorkloadSensor:
			return sensorPlan(name, s.sized(2000), s.wells(), s.Seed)
		case WorkloadFanout:
			return fanoutPlan(name, s.sized(200), s.branches(), s.Seed)
		}
	}
	return nil, fmt.Errorf("service: cannot build plan for spec kind %q", s.Kind)
}

func (s *Spec) sized(def int) int {
	if s.N > 0 {
		return s.N
	}
	return def
}

func (s *Spec) branches() int {
	if s.Branches > 0 {
		return s.Branches
	}
	return 4
}

func (s *Spec) wells() int {
	if s.Wells > 0 {
		return s.Wells
	}
	return 32
}

// wordcountPlan is the classic: word → (word, 1) → per-key sum →
// sort by word.
func wordcountPlan(name string, n int, seed uint64) (*plan.Plan, error) {
	words := datagen.Words(n, seed)
	b := plan.NewBuilder(name)
	src := b.Source("words", plan.Collection(words))
	src.CardHint = int64(n)
	pairs := b.Map(src, func(r data.Record) (data.Record, error) {
		return data.NewRecord(r.Field(0), data.Int(1)), nil
	})
	counts := b.ReduceByKey(pairs, plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
		return data.NewRecord(a.Field(0), data.Int(a.Field(1).Int()+b.Field(1).Int())), nil
	})
	b.Collect(b.Sort(counts, plan.FieldKey(0), false))
	return b.Build()
}

// sensorPlan is the §1 pipeline shape: normalize → per-well aggregate
// → feature vector → sort, over generated readings.
func sensorPlan(name string, n, wells int, seed uint64) (*plan.Plan, error) {
	readings := datagen.Sensors(datagen.SensorConfig{N: n, Wells: wells, Seed: seed})
	b := plan.NewBuilder(name)
	src := b.Source("readings", plan.Collection(readings))
	src.CardHint = int64(n)
	norm := b.Map(src, func(r data.Record) (data.Record, error) {
		p := r.Field(2).Float() * 6.894
		if p < 0 {
			p = 0
		}
		return data.NewRecord(r.Field(0),
			data.Float(p), data.Float(r.Field(3).Float()), data.Float(r.Field(4).Float()),
			data.Int(1)), nil
	})
	agg := b.ReduceByKey(norm, plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
		return data.NewRecord(a.Field(0),
			data.Float(a.Field(1).Float()+b.Field(1).Float()),
			data.Float(a.Field(2).Float()+b.Field(2).Float()),
			data.Float(a.Field(3).Float()+b.Field(3).Float()),
			data.Int(a.Field(4).Int()+b.Field(4).Int())), nil
	})
	feats := b.Map(agg, func(r data.Record) (data.Record, error) {
		cnt := float64(r.Field(4).Int())
		return data.NewRecord(r.Field(0), data.Vec([]float64{
			r.Field(1).Float() / cnt, r.Field(2).Float() / cnt, r.Field(3).Float() / cnt,
		})), nil
	})
	b.Collect(b.Sort(feats, plan.FieldKey(0), false))
	return b.Build()
}

// fanoutPlan is the E8-style diamond: one source feeding `branches`
// independent map legs (each burning a deterministic amount of CPU per
// record), unioned and folded to a checksum — wide enough to exercise
// the shared scheduler pool.
func fanoutPlan(name string, n, branches int, seed uint64) (*plan.Plan, error) {
	recs := make([]data.Record, n)
	for i := range recs {
		recs[i] = data.NewRecord(data.Int(int64(i) + int64(seed)))
	}
	b := plan.NewBuilder(name)
	src := b.Source("ints", plan.Collection(recs))
	src.CardHint = int64(n)
	legs := make([]*plan.Operator, branches)
	for i := range legs {
		leg := uint64(i + 1)
		legs[i] = b.Map(src, func(r data.Record) (data.Record, error) {
			x := uint64(r.Field(0).Int()) ^ leg
			// A short deterministic mix loop: CPU work without sleeps,
			// identical on every platform.
			for j := 0; j < 64; j++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
			}
			return data.NewRecord(data.Int(int64(x>>1) % 1_000_003)), nil
		})
	}
	out := legs[0]
	for _, l := range legs[1:] {
		out = b.Union(out, l)
	}
	sum := b.Reduce(out, func(a, b data.Record) (data.Record, error) {
		return data.NewRecord(data.Int(a.Field(0).Int() + b.Field(0).Int())), nil
	})
	b.Collect(sum)
	return b.Build()
}

// DefaultCatalog is the server's shared queryable catalog: generated
// datasets with fixed seeds, registered once at startup. Scale shrinks
// the tables for tests and quick demos (0 = full size).
func DefaultCatalog(scale int) (*rheemql.Catalog, error) {
	if scale <= 0 {
		scale = 20_000
	}
	cat := rheemql.NewCatalog()
	sensorSchema, err := data.NewSchema(
		data.Field{Name: "well", Type: data.KindInt},
		data.Field{Name: "hour", Type: data.KindInt},
		data.Field{Name: "pressure", Type: data.KindFloat},
		data.Field{Name: "temperature", Type: data.KindFloat},
		data.Field{Name: "flow", Type: data.KindFloat},
	)
	if err != nil {
		return nil, err
	}
	if err := cat.Register("sensors", sensorSchema,
		datagen.Sensors(datagen.SensorConfig{N: scale, Wells: 32, Seed: 7})); err != nil {
		return nil, err
	}
	wordSchema, err := data.NewSchema(data.Field{Name: "word", Type: data.KindString})
	if err != nil {
		return nil, err
	}
	if err := cat.Register("words", wordSchema, datagen.Words(scale, 11)); err != nil {
		return nil, err
	}
	return cat, nil
}
