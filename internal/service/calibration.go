// Calibration persistence: the shared cost calibrator's state, saved
// through the storage layer after every finished job and rehydrated in
// New — the learning loop survives restarts the same way run profiles
// do. The calibrator's binary codec is versioned and decode-hardened
// (cost.DecodeCalibrator); stores may serialize datasets as text (the
// CSV store does), so the bytes travel base64-encoded in a single
// string quantum.
package service

import (
	"encoding/base64"
	"fmt"

	"rheem/internal/core/cost"
	"rheem/internal/data"
	"rheem/internal/storage"
)

// calibrationDataset names the persisted calibration state.
const calibrationDataset = "calibration"

// calibrationSchema is the one-column storage schema the state is
// written under: base64 of the versioned binary encoding.
var calibrationSchema = data.MustSchema(data.Field{Name: "state", Type: data.KindString})

// loadCalibration rehydrates cal from the store's persisted state, if
// any. A missing dataset is a cold start, not an error; a present but
// corrupt dataset fails the load loudly — silently discarding learned
// state would look like a regression in every plan choice.
func loadCalibration(store *storage.Manager, cal *cost.Calibrator) error {
	store.Adopt()
	found := false
	for _, ds := range store.Datasets() {
		if ds == calibrationDataset {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	_, recs, err := store.Get(calibrationDataset)
	if err != nil {
		return err
	}
	if len(recs) != 1 {
		return fmt.Errorf("calibration dataset has %d quanta, want 1", len(recs))
	}
	raw, err := base64.StdEncoding.DecodeString(recs[0].Field(0).Str())
	if err != nil {
		return fmt.Errorf("calibration dataset is not base64: %w", err)
	}
	decoded, err := cost.DecodeCalibrator(raw)
	if err != nil {
		return err
	}
	cal.Replace(decoded)
	return nil
}

// saveCalibration persists the calibrator after a job folded into it.
// Best-effort like profile persistence: a full or failing store must
// not fail the job that triggered the save — the in-memory calibrator
// keeps serving, and the next job retries the write.
func (s *Service) saveCalibration() {
	if s.cal == nil || s.cfg.CalibrationStore == nil {
		return
	}
	state := base64.StdEncoding.EncodeToString(s.cal.Encode())
	_, _ = s.cfg.CalibrationStore.Put(storage.PutRequest{
		Dataset: calibrationDataset,
		Schema:  calibrationSchema,
		Records: []data.Record{data.NewRecord(data.Str(state))},
	})
}
