// Package service is the multi-tenant job service over the rheem
// engine: an admission-controlled front door (bounded queue, per-tenant
// quotas and rate limits), a single dispatcher feeding every accepted
// job through one shared engine registry and scheduler pool, per-tenant
// platform health, and a graceful drain that guarantees every acked job
// reaches an observable terminal state.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rheem"
	"rheem/internal/apps/rheemql"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/metrics"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/plan"
	"rheem/internal/core/profile"
	"rheem/internal/core/trace"
	"rheem/internal/data"
	"rheem/internal/storage"
)

// ShedError reports a submission rejected by admission control. The
// HTTP layer maps it to 429 with a Retry-After hint.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("service: overloaded (%s), retry in %s", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// ErrDraining rejects submissions while the service shuts down (HTTP
// 503): unlike a shed, retrying against this instance won't help.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// ErrNotFound reports an unknown (or already evicted) job id.
var ErrNotFound = errors.New("service: no such job")

// Config tunes the service. The zero value serves with sane defaults.
type Config struct {
	// Rheem configures the shared engine context all jobs run on.
	Rheem rheem.Config

	// MaxActiveJobs bounds jobs executing simultaneously, service-wide
	// (default 4). Everything else waits in the pending queue.
	MaxActiveJobs int
	// QueueDepth bounds accepted-but-not-started jobs service-wide
	// (default 64); submissions past it are shed with 429.
	QueueDepth int
	// PoolSize is the shared scheduler pool's slot count — the global
	// bound on concurrently executing atoms across ALL jobs (default
	// runtime.NumCPU()). Without it, N concurrent jobs each spin their
	// own worker pool and oversubscribe the host N-fold.
	PoolSize int

	// DefaultQuota applies to tenants without an entry in Quotas.
	DefaultQuota Quota
	// Quotas assigns per-tenant overrides by tenant name.
	Quotas map[string]Quota

	// DefaultDeadline bounds jobs that don't set one (default 30s);
	// MaxDeadline clamps what a job may ask for (default 5m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DefaultAtomTimeout bounds each atom attempt for jobs that don't
	// set one (default 10s); negative disables the default.
	DefaultAtomTimeout time.Duration
	// DrainTimeout is how long Drain waits for in-flight work before
	// force-cancelling it (default 30s).
	DrainTimeout time.Duration

	// JobHistory bounds finished jobs kept queryable (default 256);
	// RunHistory bounds the telemetry hub's finished-run history
	// (default 128).
	JobHistory int
	RunHistory int
	// ProfileHistory bounds the flight recorder's completed-run profile
	// history (0 selects profile.DefaultHistory; negative disables the
	// recorder entirely).
	ProfileHistory int
	// ProfileStore, when set, persists recorded profiles so they
	// survive a service restart; the recorder rehydrates from it in New
	// and seeds run IDs past the persisted maximum.
	ProfileStore *storage.Manager

	// Calibration enables the shared cost calibrator: every tenant's
	// finished jobs fold their estimate-vs-actual residuals into one
	// calibrator on the hub, and every job's plan is priced with the
	// learned corrections — the service's live traffic warms the
	// optimizer. Inspect it at GET /calibration.
	Calibration bool
	// CalibrationConfig tunes the calibrator (zero value = defaults).
	CalibrationConfig cost.CalibratorConfig
	// CalibrationStore, when set (and Calibration is on), persists the
	// calibrator's state after every finished job and rehydrates it in
	// New, so learning survives restarts.
	CalibrationStore *storage.Manager

	// FailureThreshold consecutive job failures attributed to a platform
	// open that tenant's breaker for it (default 3); Cooldown is how
	// long it stays open before a half-open probe (default 30s).
	FailureThreshold int
	Cooldown         time.Duration

	// CatalogScale shrinks the server's SQL catalog tables (0 = full).
	CatalogScale int

	// Hub shares an existing telemetry hub; nil creates a private one.
	Hub *metrics.Hub
	// Clock injects time (tests); nil uses time.Now.
	Clock func() time.Time
	// Prepare runs against the engine context before the service starts
	// — the chaos suite's fault-injection hook.
	Prepare func(*rheem.Context) error
}

func (c Config) withDefaults() Config {
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.NumCPU()
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.DefaultAtomTimeout == 0 {
		c.DefaultAtomTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 256
	}
	if c.RunHistory <= 0 {
		c.RunHistory = 128
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Service runs many tenants' jobs concurrently over one shared engine.
type Service struct {
	cfg       Config
	rctx      *rheem.Context
	hub       *metrics.Hub
	cat       *rheemql.Catalog
	pool      *executor.Pool
	rec       *profile.Recorder // nil when ProfileHistory < 0
	cal       *cost.Calibrator  // nil unless Config.Calibration
	platforms []engine.PlatformID

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenant
	order   []string // round-robin order (tenant creation order)
	rr      int
	jobs    map[string]*Job
	doneIDs []string // terminal jobs in completion order (eviction)
	queued  int
	active  int

	draining   bool
	closed     bool
	drainCh    chan struct{} // non-nil once draining; closed when drained
	drainWall  time.Time
	drainForce bool

	wg     sync.WaitGroup // dispatcher + running jobs
	nextID atomic.Int64

	// Scrape-time gauges read these atomics only — never s.mu — so
	// /metrics can never deadlock against the service lock.
	gQueued   atomic.Int64
	gActive   atomic.Int64
	gDraining atomic.Int64
	gDrainNS  atomic.Int64

	mAccepted  *metrics.CounterVec
	mShed      *metrics.CounterVec
	mDone      *metrics.CounterVec
	mLatency   *metrics.HistogramVec
	mQueueWait *metrics.HistogramVec
}

// New builds the engine context, registers the service_* metrics on
// the hub, and starts the dispatcher. Stop with Drain/Kill + Close.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	hub := cfg.Hub
	if hub == nil {
		hub = metrics.NewHub()
	}
	rctx, err := rheem.NewContext(cfg.Rheem, rheem.WithTelemetryHub(hub))
	if err != nil {
		return nil, err
	}
	cat, err := DefaultCatalog(cfg.CatalogScale)
	if err != nil {
		return nil, err
	}
	if cfg.Prepare != nil {
		if err := cfg.Prepare(rctx); err != nil {
			return nil, err
		}
	}
	hub.Runs().SetDoneHistory(cfg.RunHistory)
	// The flight recorder sees every engine run; with a store it
	// rehydrates the persisted profile history and advances the run-ID
	// counter past it, so post-restart runs never collide with the
	// profiles a previous process left behind.
	var rec *profile.Recorder
	if cfg.ProfileHistory >= 0 {
		rec = profile.NewRecorder(cfg.ProfileHistory, cfg.ProfileStore)
		if cfg.ProfileStore != nil {
			maxID, err := rec.LoadPersisted()
			if err != nil {
				return nil, fmt.Errorf("service: loading persisted profiles: %w", err)
			}
			hub.Runs().SeedID(maxID)
		}
		hub.SetFlightRecorder(rec)
	}
	// The shared calibrator, rehydrated from its store before the
	// dispatcher starts so the very first job is priced with whatever a
	// previous process learned.
	var cal *cost.Calibrator
	if cfg.Calibration {
		cal = cost.NewCalibrator(cfg.CalibrationConfig)
		if cfg.CalibrationStore != nil {
			if err := loadCalibration(cfg.CalibrationStore, cal); err != nil {
				return nil, fmt.Errorf("service: loading calibration: %w", err)
			}
		}
		hub.SetCalibrator(cal)
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		rctx:       rctx,
		hub:        hub,
		cat:        cat,
		rec:        rec,
		cal:        cal,
		pool:       executor.NewPool(cfg.PoolSize),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		tenants:    map[string]*tenant{},
		jobs:       map[string]*Job{},
	}
	// Platform set after registration; used to guard "never exclude all".
	for _, p := range rctx.Registry().Platforms() {
		s.platforms = append(s.platforms, p.ID())
	}
	s.cond = sync.NewCond(&s.mu)
	s.registerMetrics()
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

func (s *Service) now() time.Time { return s.cfg.Clock() }

// Hub returns the service's telemetry hub (mount metrics.NewServer on
// it, or let http.go's Handler do so).
func (s *Service) Hub() *metrics.Hub { return s.hub }

// Engine returns the shared engine context (tests, fault injection).
func (s *Service) Engine() *rheem.Context { return s.rctx }

// SchedulerPool returns the shared scheduler pool every job draws atom
// slots from. Tests hold its slots to freeze execution deterministically.
func (s *Service) SchedulerPool() *executor.Pool { return s.pool }

// FlightRecorder returns the service's run-profile recorder, nil when
// Config.ProfileHistory disabled it.
func (s *Service) FlightRecorder() *profile.Recorder { return s.rec }

// Calibrator returns the shared cost calibrator, nil unless
// Config.Calibration enabled it.
func (s *Service) Calibrator() *cost.Calibrator { return s.cal }

var latencyBounds = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

func (s *Service) registerMetrics() {
	reg := s.hub.Registry()
	s.mAccepted = reg.CounterVec("service_jobs_accepted_total",
		"Jobs admission control accepted (acked to the client).", "tenant")
	s.mShed = reg.CounterVec("service_jobs_shed_total",
		"Submissions shed by admission control, by reason.", "tenant", "reason")
	s.mDone = reg.CounterVec("service_jobs_done_total",
		"Jobs reaching a terminal state, by state.", "tenant", "state")
	s.mLatency = reg.HistogramVec("service_job_latency_seconds",
		"Job latency from acceptance to terminal state.", latencyBounds, "tenant")
	s.mQueueWait = reg.HistogramVec("service_job_queue_wait_seconds",
		"Queue wait from acceptance to execution start.", latencyBounds, "tenant")
	one := func(v float64) []metrics.Sample { return []metrics.Sample{{Value: v}} }
	reg.SetFunc("service_queue_depth", "Accepted jobs waiting to start.", "gauge", nil,
		func() []metrics.Sample { return one(float64(s.gQueued.Load())) })
	reg.SetFunc("service_active_jobs", "Jobs executing right now.", "gauge", nil,
		func() []metrics.Sample { return one(float64(s.gActive.Load())) })
	reg.SetFunc("service_pool_slots_in_use", "Shared scheduler pool slots held by executing atoms.", "gauge", nil,
		func() []metrics.Sample { return one(float64(s.pool.InUse())) })
	reg.SetFunc("service_pool_slots", "Shared scheduler pool size.", "gauge", nil,
		func() []metrics.Sample { return one(float64(s.pool.Size())) })
	reg.SetFunc("service_draining", "1 while the service is draining.", "gauge", nil,
		func() []metrics.Sample { return one(float64(s.gDraining.Load())) })
	reg.SetFunc("service_drain_seconds", "Wall time the last drain took.", "gauge", nil,
		func() []metrics.Sample { return one(time.Duration(s.gDrainNS.Load()).Seconds()) })
}

// tenantLocked finds or creates the tenant record.
func (s *Service) tenantLocked(name string, now time.Time) *tenant {
	tn := s.tenants[name]
	if tn == nil {
		q := s.cfg.DefaultQuota
		if override, ok := s.cfg.Quotas[name]; ok {
			q = override
		}
		q = q.withDefaults()
		tn = &tenant{name: name, quota: q, bucket: newBucket(q, now)}
		s.tenants[name] = tn
		s.order = append(s.order, name)
	}
	return tn
}

// Submit runs admission control and, on acceptance, acks the job:
// from this point the service guarantees the job reaches a terminal
// state observable through Status. Rejections are typed — ShedError
// (retryable overload), ErrDraining (shutting down), anything else is
// the submitter's fault (HTTP 400).
func (s *Service) Submit(req Request) (JobStatus, error) {
	req.normalize()
	if err := req.Validate(); err != nil {
		return JobStatus{}, err
	}
	if req.Platform != "" && !s.knownPlatform(engine.PlatformID(req.Platform)) {
		return JobStatus{}, fmt.Errorf("service: unknown platform %q", req.Platform)
	}
	now := s.now()
	id := fmt.Sprintf("j-%d", s.nextID.Add(1))
	planName := fmt.Sprintf("%s/%s#%s", req.Tenant, req.Name, id)
	// SQL compiles at the door: syntax and catalog errors are the
	// submitter's fault and should reject the request, not produce a
	// failed job. Workload plans build lazily at execution start so
	// admission never pays for input generation.
	var build func() (*plan.Plan, error)
	if req.Spec.Kind == KindSQL {
		p, err := req.Spec.BuildPlan(planName, s.cat)
		if err != nil {
			return JobStatus{}, err
		}
		build = func() (*plan.Plan, error) { return p, nil }
	} else {
		spec := req.Spec
		build = func() (*plan.Plan, error) { return spec.BuildPlan(planName, s.cat) }
	}
	j := &Job{
		id: id, tenant: req.Tenant, name: req.Name, req: req,
		submitted: now, buildPlan: build,
		state: StateQueued, done: make(chan struct{}),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return JobStatus{}, ErrDraining
	}
	tn := s.tenantLocked(req.Tenant, now)
	if ok, retry := tn.bucket.take(now); !ok {
		tn.shed++
		s.mShed.With(tn.name, "rate-limit").Inc()
		return JobStatus{}, &ShedError{Reason: "tenant rate limit", RetryAfter: retry}
	}
	if s.queued >= s.cfg.QueueDepth {
		tn.shed++
		s.mShed.With(tn.name, "queue-full").Inc()
		return JobStatus{}, &ShedError{Reason: "service queue full", RetryAfter: time.Second}
	}
	if len(tn.queue) >= tn.quota.MaxQueued {
		tn.shed++
		s.mShed.With(tn.name, "tenant-queue-full").Inc()
		return JobStatus{}, &ShedError{Reason: "tenant queue full", RetryAfter: time.Second}
	}
	tn.queue = append(tn.queue, j)
	tn.accepted++
	s.queued++
	s.gQueued.Store(int64(s.queued))
	s.jobs[id] = j
	s.mAccepted.With(tn.name).Inc()
	j.acked = s.now() // the admission span's end, the queue span's start
	s.cond.Signal()
	return j.statusLocked(), nil
}

func (s *Service) knownPlatform(id engine.PlatformID) bool {
	for _, p := range s.platforms {
		if p == id {
			return true
		}
	}
	return false
}

// dispatch is the single scheduler loop: while capacity is free it
// starts the next runnable job, cycling tenants round-robin so one
// tenant's backlog cannot starve the others.
func (s *Service) dispatch() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && !s.runnableLocked() {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		j, tn := s.pickLocked()
		s.queued--
		s.gQueued.Store(int64(s.queued))
		s.active++
		s.gActive.Store(int64(s.active))
		tn.running++
		j.state = StateRunning
		j.started = s.now()
		s.wg.Add(1)
		go s.runJob(j, tn)
	}
}

func (s *Service) runnableLocked() bool {
	if s.active >= s.cfg.MaxActiveJobs {
		return false
	}
	for _, name := range s.order {
		tn := s.tenants[name]
		if len(tn.queue) > 0 && tn.running < tn.quota.MaxConcurrent {
			return true
		}
	}
	return false
}

// pickLocked pops the head of the next eligible tenant's queue,
// starting the scan one past the previously served tenant.
func (s *Service) pickLocked() (*Job, *tenant) {
	n := len(s.order)
	for i := 0; i < n; i++ {
		idx := (s.rr + i) % n
		tn := s.tenants[s.order[idx]]
		if len(tn.queue) > 0 && tn.running < tn.quota.MaxConcurrent {
			j := tn.queue[0]
			tn.queue = tn.queue[1:]
			s.rr = (idx + 1) % n
			return j, tn
		}
	}
	panic("service: pickLocked called without a runnable job")
}

func (s *Service) atomTimeout(req Request) time.Duration {
	if req.AtomTimeoutMS > 0 {
		return time.Duration(req.AtomTimeoutMS) * time.Millisecond
	}
	if s.cfg.DefaultAtomTimeout > 0 {
		return s.cfg.DefaultAtomTimeout
	}
	return 0
}

// runJob executes one job end to end and finishes it into a terminal
// state — every exit path lands in finishLocked.
func (s *Service) runJob(j *Job, tn *tenant) {
	defer s.wg.Done()
	deadline := j.req.deadline(s.cfg.DefaultDeadline, s.cfg.MaxDeadline)
	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	defer cancel()

	s.mu.Lock()
	if j.cancelRequested {
		s.jobDoneLocked(j, tn, StateCancelled, errors.New("cancelled before start"), nil, "", nil, 0)
		s.mu.Unlock()
		s.cond.Broadcast()
		return
	}
	j.cancel = cancel
	excluded := tn.excludedLocked(s.now())
	s.mu.Unlock()
	s.mQueueWait.With(j.tenant).Observe(j.started.Sub(j.submitted).Seconds())

	// Tenant health may have opened a breaker for every platform; keep
	// at least one candidate so the job can still be attempted — a
	// likely failure beats a certain one.
	if len(excluded) >= len(s.platforms) && len(excluded) > 0 {
		excluded = excluded[:len(s.platforms)-1]
	}

	var (
		recs      []data.Record
		digest    string
		platforms []engine.PlatformID
		failovers int
		runID     int64
	)
	p, err := j.buildPlan()
	if err == nil {
		opts := []rheem.RunOption{
			rheem.WithContext(ctx),
			rheem.WithSchedulerPool(s.pool),
			rheem.WithFailover(!j.req.NoFailover),
		}
		if at := s.atomTimeout(j.req); at > 0 {
			opts = append(opts, rheem.WithAtomTimeout(at))
		}
		if j.req.Platform != "" {
			opts = append(opts, rheem.OnPlatform(engine.PlatformID(j.req.Platform)))
		} else if len(excluded) > 0 {
			opts = append(opts, rheem.WithExcludedPlatforms(excluded...))
		}
		if j.req.Shards > 0 {
			opts = append(opts, rheem.WithShards(j.req.Shards))
		}
		var rep *rheem.Report
		recs, rep, err = s.rctx.Execute(p, opts...)
		if rep != nil {
			failovers = rep.Failovers
			platforms = planPlatforms(rep.Plan)
			runID = rep.RunID
		}
		if err == nil {
			digest, err = Digest(recs)
		}
	}

	state := StateSucceeded
	if err != nil {
		s.mu.Lock()
		requested := j.cancelRequested
		s.mu.Unlock()
		switch {
		case requested:
			state = StateCancelled
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			state = StateFailed
			err = fmt.Errorf("deadline (%s) exceeded: %w", deadline, err)
		case s.baseCtx.Err() != nil:
			state = StateCancelled
			err = fmt.Errorf("server shutting down: %w", err)
		default:
			state = StateFailed
		}
	}

	s.mu.Lock()
	if state != StateCancelled && len(platforms) > 0 {
		tn.reportOutcomeLocked(platforms, state == StateFailed,
			s.cfg.FailureThreshold, s.cfg.Cooldown, s.now())
	}
	j.runID = runID
	s.jobDoneLocked(j, tn, state, err, recs, digest, platforms, failovers)
	s.mu.Unlock()
	s.cond.Broadcast()
	s.annotateRun(j)
	// The engine run already folded into the calibrator (rheem.Execute
	// does it on the shared hub); what's left is persisting the newly
	// warmed state.
	s.saveCalibration()
}

// annotateRun appends the service-layer lifecycle spans — admission,
// queue residency, dispatch-to-terminal — to the job's recorded run
// profile, correlated by run ID and tagged with the job and tenant, so
// a job's path from submission to result reads as one trace. Called
// once the job is terminal, outside s.mu (Annotate re-persists the
// record through the profile store).
func (s *Service) annotateRun(j *Job) {
	if s.rec == nil {
		return
	}
	s.mu.Lock()
	runID := j.runID
	planName := fmt.Sprintf("%s/%s#%s", j.tenant, j.name, j.id)
	id, tenant := j.id, j.tenant
	submitted, acked, started, ended := j.submitted, j.acked, j.started, j.ended
	s.mu.Unlock()
	if runID == 0 {
		return // never reached the executor; nothing was recorded
	}
	mk := func(kind string, from, to time.Time) *trace.Span {
		wall := to.Sub(from)
		if wall < 0 {
			wall = 0
		}
		return &trace.Span{
			Kind: kind, Name: kind, Plan: planName, Iteration: -1, Shard: -1,
			Job: id, Tenant: tenant,
			StartedAt: from, EndedAt: to, Wall: wall,
		}
	}
	// Best effort: the run may already have been evicted from the
	// recorder's bounded history by newer jobs.
	_ = s.rec.Annotate(runID,
		mk(trace.KindAdmission, submitted, acked),
		mk(trace.KindQueue, acked, started),
		mk(trace.KindDispatch, started, ended),
	)
}

// jobDoneLocked moves a started job to its terminal state and releases
// its capacity. Caller holds s.mu.
func (s *Service) jobDoneLocked(j *Job, tn *tenant, state string, err error, recs []data.Record, digest string, platforms []engine.PlatformID, failovers int) {
	s.active--
	s.gActive.Store(int64(s.active))
	tn.running--
	j.platforms = platforms
	j.failovers = failovers
	s.finishLocked(j, tn, state, err, recs, digest)
}

// finishLocked is the single place a job becomes terminal: state,
// counters, done-channel, bounded history eviction. Caller holds s.mu.
func (s *Service) finishLocked(j *Job, tn *tenant, state string, err error, recs []data.Record, digest string) {
	if terminal(j.state) {
		return
	}
	j.state = state
	j.ended = s.now()
	switch state {
	case StateSucceeded:
		j.records = recs
		j.digest = digest
		j.outRecs = int64(len(recs))
		tn.completed++
	case StateFailed:
		tn.failed++
	case StateCancelled:
		tn.cancelled++
	}
	if err != nil && state != StateSucceeded {
		j.err = err.Error()
	}
	close(j.done)
	s.mDone.With(tn.name, state).Inc()
	if !j.started.IsZero() {
		s.mLatency.With(tn.name).Observe(j.ended.Sub(j.submitted).Seconds())
	}
	s.doneIDs = append(s.doneIDs, j.id)
	for len(s.doneIDs) > s.cfg.JobHistory {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
}

// planPlatforms lists the distinct platforms an execution plan used.
func planPlatforms(ep *optimizer.ExecutionPlan) []engine.PlatformID {
	if ep == nil {
		return nil
	}
	seen := map[engine.PlatformID]bool{}
	for _, id := range ep.Assignment {
		seen[id] = true
	}
	out := make([]engine.PlatformID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Status returns one job's snapshot.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	return j.statusLocked(), nil
}

// Result returns a succeeded job's records and digest.
func (s *Service) Result(id string) ([]data.Record, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, "", ErrNotFound
	}
	if j.state != StateSucceeded {
		return nil, "", fmt.Errorf("service: job %s is %s, no result", id, j.state)
	}
	return j.records, j.digest, nil
}

// Jobs snapshots every job the service still remembers, submission
// order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.statusLocked())
	}
	sort.Slice(out, func(i, k int) bool { return jobNum(out[i].ID) < jobNum(out[k].ID) })
	return out
}

func jobNum(id string) int64 {
	var n int64
	fmt.Sscanf(id, "j-%d", &n)
	return n
}

// Tenants snapshots per-tenant admission and health state.
func (s *Service) Tenants() []TenantStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	out := make([]TenantStatus, 0, len(s.order))
	for _, name := range s.order {
		tn := s.tenants[name]
		st := TenantStatus{
			Name: tn.name, Quota: tn.quota,
			Queued: len(tn.queue), Running: tn.running,
			Accepted: tn.accepted, Shed: tn.shed,
			Completed: tn.completed, Failed: tn.failed, Cancelled: tn.cancelled,
		}
		for _, id := range tn.excludedLocked(now) {
			st.ExcludedPlatforms = append(st.ExcludedPlatforms, string(id))
		}
		out = append(out, st)
	}
	return out
}

// Cancel stops a job: a queued job is finished immediately, a running
// one has its context cancelled (terminal state follows when the
// executor unwinds). Cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	tn := s.tenants[j.tenant]
	switch j.state {
	case StateQueued:
		for i, q := range tn.queue {
			if q == j {
				tn.queue = append(tn.queue[:i], tn.queue[i+1:]...)
				break
			}
		}
		s.queued--
		s.gQueued.Store(int64(s.queued))
		j.cancelRequested = true
		s.finishLocked(j, tn, StateCancelled, errors.New("cancelled by request"), nil, "")
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.statusLocked(), nil
}

// Wait blocks until the job is terminal (or ctx expires) and returns
// its final status.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.statusLocked(), nil
}

// DrainReport summarizes a completed drain.
type DrainReport struct {
	// Duration is the wall time from drain start to quiescence.
	Duration time.Duration `json:"duration"`
	// Forced reports whether the drain timeout expired and remaining
	// work was force-cancelled (still observable — cancelled, not lost).
	Forced bool `json:"forced"`
}

// Drain stops admission and waits for every accepted job to reach a
// terminal state: queued and running jobs are allowed to finish; past
// the drain timeout the stragglers are force-cancelled. Idempotent —
// concurrent callers wait for the same drain. ctx bounds this caller's
// wait, not the drain itself.
func (s *Service) Drain(ctx context.Context) (DrainReport, error) {
	s.mu.Lock()
	if s.drainCh == nil {
		s.draining = true
		s.gDraining.Store(1)
		s.drainWall = time.Now()
		s.drainCh = make(chan struct{})
		go s.drainLoop(s.drainCh)
	}
	ch := s.drainCh
	s.mu.Unlock()
	select {
	case <-ch:
	case <-ctx.Done():
		return s.drainReport(), ctx.Err()
	}
	return s.drainReport(), nil
}

func (s *Service) drainReport() DrainReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DrainReport{Duration: time.Duration(s.gDrainNS.Load()), Forced: s.drainForce}
}

// drainLoop waits for quiescence, force-cancelling at the timeout.
func (s *Service) drainLoop(ch chan struct{}) {
	timeout := time.NewTimer(s.cfg.DrainTimeout)
	defer timeout.Stop()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		idle := s.queued == 0 && s.active == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-tick.C:
		case <-timeout.C:
			s.forceCancel("drain timeout")
		}
	}
	s.gDrainNS.Store(int64(time.Since(s.drainWall)))
	s.gDraining.Store(0)
	close(ch)
}

// forceCancel finishes every queued job as cancelled and cancels every
// running one — nothing is dropped, everything stays observable.
func (s *Service) forceCancel(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainForce = true
	for _, name := range s.order {
		tn := s.tenants[name]
		queue := tn.queue
		tn.queue = nil
		for _, j := range queue {
			s.queued--
			j.cancelRequested = true
			s.finishLocked(j, tn, StateCancelled, errors.New(reason), nil, "")
		}
	}
	s.gQueued.Store(int64(s.queued))
	for _, j := range s.jobs {
		if j.state == StateRunning {
			j.cancelRequested = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
}

// Kill is the hard stop (second SIGTERM): cancel the engine context
// under everything, force-cancel queued work, and stop admitting. Jobs
// terminate as cancelled — observable, not lost.
func (s *Service) Kill() {
	s.mu.Lock()
	s.draining = true
	s.gDraining.Store(1)
	s.mu.Unlock()
	s.baseCancel()
	s.forceCancel("server killed")
	s.cond.Broadcast()
}

// Close stops the dispatcher and waits for in-flight jobs to unwind.
// Call after Drain or Kill; closing a busy service blocks until its
// running jobs finish.
func (s *Service) Close() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if alreadyClosed {
		return
	}
	s.cond.Broadcast()
	s.wg.Wait()
	s.baseCancel()
	s.rctx.Close()
}
