package service

import (
	"testing"
	"time"

	"rheem/internal/core/cost"
)

// TestCalibrationSharedAcrossTenants pins the multi-tenant learning
// loop: with Config.Calibration on, every tenant's finished jobs fold
// into ONE calibrator — tenant B's plans benefit from tenant A's
// traffic. The test runs jobs from two tenants and checks the shared
// calibrator saw all of them and learned applied factors.
func TestCalibrationSharedAcrossTenants(t *testing.T) {
	s := newTestService(t, Config{Calibration: true})
	cal := s.Calibrator()
	if cal == nil {
		t.Fatal("Config.Calibration should install a calibrator")
	}
	if got := s.hub.Calibrator(); got != cal {
		t.Fatal("service calibrator not registered on the telemetry hub")
	}

	const perTenant = 4
	for i := 0; i < perTenant; i++ {
		for _, tenant := range []string{"acme", "globex"} {
			st, err := s.Submit(wordcountReq(tenant, 300, uint64(10+i)))
			if err != nil {
				t.Fatal(err)
			}
			if final := waitTerminal(t, s, st.ID); final.State != StateSucceeded {
				t.Fatalf("%s job %s: %s (%s)", tenant, st.ID, final.State, final.Err)
			}
		}
	}

	// Execute folds before the job turns terminal, so by now every
	// job's residuals are in.
	if folds := cal.Folds(); folds < 2*perTenant {
		t.Fatalf("shared calibrator folded %d times, want >= %d", folds, 2*perTenant)
	}
	snap := cal.Snapshot()
	if len(snap.Cost) == 0 {
		t.Fatal("no cost cells learned from live traffic")
	}
	applied := 0
	for _, c := range snap.Cost {
		if c.Kind == "" || c.Platform == "" {
			t.Errorf("cost cell missing identity: %+v", c)
		}
		if !(c.Factor > 0) {
			t.Errorf("cell %s/%s has unsafe factor %v", c.Kind, c.Platform, c.Factor)
		}
		if c.Applied {
			applied++
		}
	}
	if applied == 0 {
		t.Errorf("no cell past the min-sample guard after %d folds: %+v", cal.Folds(), snap.Cost)
	}

	// Default config leaves calibration off: no calibrator anywhere.
	off := newTestService(t, Config{})
	if off.Calibrator() != nil || off.hub.Calibrator() != nil {
		t.Fatal("calibration must be opt-in")
	}
}

// TestCalibrationPersistenceAcrossRestart: state learned by one
// service process is rehydrated by a fresh process pointed at the same
// store — warm plans from the first request after a restart.
func TestCalibrationPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := newTestService(t, Config{Calibration: true, CalibrationStore: profileStore(t, dir)})
	for i := 0; i < 4; i++ {
		st, err := s1.Submit(wordcountReq("acme", 300, uint64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		if final := waitTerminal(t, s1, st.ID); final.State != StateSucceeded {
			t.Fatalf("job %s: %s (%s)", st.ID, final.State, final.Err)
		}
	}
	wantFolds := s1.Calibrator().Folds()
	if wantFolds < 4 {
		t.Fatalf("folded %d times, want >= 4", wantFolds)
	}

	// saveCalibration lands after the job turns terminal (same
	// goroutine as annotateRun) — poll the store until the persisted
	// state caught up with the in-memory fold count.
	deadline := time.Now().Add(10 * time.Second)
	for {
		probe := cost.NewCalibrator(cost.CalibratorConfig{})
		if err := loadCalibration(s1.cfg.CalibrationStore, probe); err == nil && probe.Folds() >= wantFolds {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("persisted calibration never reached %d folds", wantFolds)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wantState := s1.Calibrator().Encode()
	s1.Kill()
	s1.Close()

	s2 := newTestService(t, Config{Calibration: true, CalibrationStore: profileStore(t, dir)})
	if got := s2.Calibrator().Folds(); got != wantFolds {
		t.Fatalf("restarted service rehydrated %d folds, want %d", got, wantFolds)
	}
	if got := s2.Calibrator().Encode(); string(got) != string(wantState) {
		t.Fatalf("rehydrated state differs from persisted state:\nwant %x\ngot  %x", wantState, got)
	}

	// The warm service keeps learning on top of the rehydrated state.
	st, err := s2.Submit(wordcountReq("acme", 300, uint64(99)))
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, s2, st.ID); final.State != StateSucceeded {
		t.Fatalf("post-restart job: %s (%s)", final.State, final.Err)
	}
	if got := s2.Calibrator().Folds(); got <= wantFolds {
		t.Fatalf("warm service stopped learning: folds %d, want > %d", got, wantFolds)
	}
}
