// The HTTP/JSON surface: submit a plan, poll status, fetch results,
// cancel — plus the telemetry endpoints (/metrics, /runs, pprof)
// delegated to the hub's monitoring server so one port serves both
// the job API and observability.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"time"

	"rheem/internal/core/metrics"
	"rheem/internal/data"
)

// Handler mounts the job API:
//
//	POST   /jobs            submit (202, or 429 + Retry-After, or 503 draining)
//	GET    /jobs            list every remembered job
//	GET    /jobs/{id}       one job's status
//	GET    /jobs/{id}/result a succeeded job's records (JSON rows + digest)
//	DELETE /jobs/{id}       cancel
//	GET    /tenants         per-tenant quotas, counters, health
//	GET    /healthz         liveness (503 while draining)
//	GET    /metrics /runs /debug/pprof/...  telemetry (hub server)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("/", metrics.NewServer(s.hub).Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		var shed *ShedError
		switch {
		case errors.As(err, &shed):
			// Load shedding: tell the client when to come back.
			secs := int(math.Ceil(shed.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		}
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	recs, digest, err := s.Result(id)
	if err != nil {
		code := http.StatusNotFound
		if !errors.Is(err, ErrNotFound) {
			// The job exists but has no result (yet, or ever).
			code = http.StatusConflict
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	rows := make([][]any, len(recs))
	for i, rec := range recs {
		row := make([]any, rec.Len())
		for f := 0; f < rec.Len(); f++ {
			row[f] = valueJSON(rec.Field(f))
		}
		rows[i] = row
	}
	writeJSON(w, http.StatusOK, struct {
		ID      string  `json:"id"`
		Records int     `json:"records"`
		Digest  string  `json:"digest"`
		Rows    [][]any `json:"rows"`
	}{ID: id, Records: len(recs), Digest: digest, Rows: rows})
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Tenants []TenantStatus `json:"tenants"`
	}{Tenants: s.Tenants()})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	queued, active := s.queued, s.active
	s.mu.Unlock()
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
		Queued int    `json:"queued"`
		Active int    `json:"active"`
	}{Status: map[bool]string{false: "ok", true: "draining"}[draining], Queued: queued, Active: active})
}

// valueJSON converts one field to its natural JSON shape.
func valueJSON(v data.Value) any {
	switch v.Kind() {
	case data.KindBool:
		return v.Bool()
	case data.KindInt:
		return v.Int()
	case data.KindFloat:
		return v.Float()
	case data.KindString:
		return v.Str()
	case data.KindVector:
		return v.Vec()
	default:
		return nil
	}
}

// Serve starts an HTTP server for the handler on addr (":0" picks a
// free port) and returns it with its bound address; shut it down with
// the returned server's Shutdown/Close.
func (s *Service) Serve(addr string) (*http.Server, string, error) {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
