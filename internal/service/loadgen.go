// Closed-loop multi-tenant load generator — the measurement harness
// behind experiment E12 and the bench suite's service area: N tenants,
// each running a fixed number of jobs through a bounded number of
// in-flight submissions, yielding throughput and the tail-latency
// curve of accepted jobs.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// LoadConfig shapes one load run.
type LoadConfig struct {
	// Tenants is how many distinct tenants submit (default 4).
	Tenants int
	// JobsPerTenant is each tenant's job count (default 8).
	JobsPerTenant int
	// Concurrency is each tenant's closed-loop width: how many of its
	// jobs are in flight (submitted, not yet terminal) at once
	// (default 2).
	Concurrency int
	// Specs is the workload mix, assigned round-robin per tenant job
	// index; empty uses a small fanout job.
	Specs []Spec
	// Timeout bounds each job's wait (default 2m) — a liveness
	// backstop, not a measurement knob.
	Timeout time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.JobsPerTenant <= 0 {
		c.JobsPerTenant = 8
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if len(c.Specs) == 0 {
		c.Specs = []Spec{{Kind: KindWorkload, Workload: WorkloadFanout, N: 64, Branches: 3, Seed: 1}}
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return c
}

// LoadResult is one load run's measurement.
type LoadResult struct {
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Shed      int `json:"shed"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`

	Wall time.Duration `json:"wall_ns"`
	// Throughput is terminal jobs per second of wall time.
	Throughput float64 `json:"jobs_per_sec"`
	// P50/P95/P99 are accepted-job latencies, acceptance → terminal
	// (queue wait included: the client-observed figure).
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// RunLoad drives the service with cfg and blocks until every job is
// terminal. Shed submissions are retried after the service's hint, so
// a run measures sustained throughput under admission control rather
// than failing on the first 429.
func RunLoad(s *Service, cfg LoadConfig) (LoadResult, error) {
	cfg = cfg.withDefaults()
	var (
		mu        sync.Mutex
		res       LoadResult
		latencies []time.Duration
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		tenantName := fmt.Sprintf("tenant-%d", t)
		next := make(chan int)
		go func() {
			for i := 0; i < cfg.JobsPerTenant; i++ {
				next <- i
			}
			close(next)
		}()
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					spec := cfg.Specs[i%len(cfg.Specs)]
					req := Request{
						Tenant: tenantName,
						Name:   fmt.Sprintf("load-%d", i),
						Spec:   spec,
					}
					st, sheds, err := submitPersistent(s, req, cfg.Timeout)
					mu.Lock()
					res.Submitted += sheds + 1
					res.Shed += sheds
					mu.Unlock()
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						continue
					}
					accepted := time.Now()
					ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
					final, err := s.Wait(ctx, st.ID)
					cancel()
					mu.Lock()
					res.Accepted++
					if err != nil {
						if firstErr == nil {
							firstErr = fmt.Errorf("wait %s: %w", st.ID, err)
						}
						mu.Unlock()
						continue
					}
					latencies = append(latencies, time.Since(accepted))
					switch final.State {
					case StateSucceeded:
						res.Succeeded++
					case StateFailed:
						res.Failed++
					case StateCancelled:
						res.Cancelled++
					}
					mu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	res.Wall = time.Since(start)
	if secs := res.Wall.Seconds(); secs > 0 {
		res.Throughput = float64(res.Succeeded+res.Failed+res.Cancelled) / secs
	}
	res.P50 = percentile(latencies, 0.50)
	res.P95 = percentile(latencies, 0.95)
	res.P99 = percentile(latencies, 0.99)
	return res, firstErr
}

// submitPersistent retries shed submissions (honouring Retry-After,
// capped for test speed) until acceptance or the timeout elapses,
// returning how many times the job was shed on the way in.
func submitPersistent(s *Service, req Request, timeout time.Duration) (JobStatus, int, error) {
	deadline := time.Now().Add(timeout)
	sheds := 0
	for {
		st, err := s.Submit(req)
		if err == nil {
			return st, sheds, nil
		}
		var shed *ShedError
		if !errors.As(err, &shed) {
			return JobStatus{}, sheds, err
		}
		sheds++
		if time.Now().After(deadline) {
			return JobStatus{}, sheds, fmt.Errorf("service: still shedding after %s: %w", timeout, err)
		}
		wait := shed.RetryAfter
		if wait <= 0 || wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

// percentile is the nearest-rank percentile of the (unsorted) samples.
func percentile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(d))
	copy(sorted, d)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
