package service

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"rheem/internal/core/profile"
	"rheem/internal/core/trace"
	"rheem/internal/storage"
	"rheem/internal/storage/csvstore"
)

// profileStore builds a csvstore-backed storage manager rooted in dir.
func profileStore(t *testing.T, dir string) *storage.Manager {
	t.Helper()
	st, err := csvstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := storage.NewManager(0, nil)
	if err := m.Register(st); err != nil {
		t.Fatal(err)
	}
	return m
}

// waitAnnotated polls until the run's profile carries the service-layer
// phase spans — annotateRun lands after the job turns terminal, so the
// terminal status alone doesn't imply the phases are recorded yet.
func waitAnnotated(t *testing.T, rec *profile.Recorder, runID int64) *profile.Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r, ok := rec.Get(runID); ok && len(r.Profile.Phases) >= 3 {
			return r
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %d never got its service-layer phases", runID)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFlightRecorderAnnotatesJobs pins the service half of the flight
// recorder: a finished job's status carries its run ID, and the
// recorded profile is annotated with the admission/queue/dispatch
// phases tagged by job and tenant.
func TestFlightRecorderAnnotatesJobs(t *testing.T) {
	s := newTestService(t, Config{})
	st, err := s.Submit(Request{
		Tenant: "acme", Name: "wc",
		Spec: Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 300, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job %s: %s (%s)", st.ID, final.State, final.Err)
	}
	if final.RunID == 0 {
		t.Fatal("terminal status has no run ID")
	}
	rec := s.FlightRecorder()
	if rec == nil {
		t.Fatal("default config should enable the flight recorder")
	}
	r := waitAnnotated(t, rec, final.RunID)
	phases := map[string]bool{}
	for _, ph := range r.Profile.Phases {
		phases[ph.Kind] = true
		if ph.Job != st.ID || ph.Tenant != "acme" {
			t.Errorf("phase %s tagged %q/%q, want %q/acme", ph.Kind, ph.Job, ph.Tenant, st.ID)
		}
		if ph.WallNS < 0 {
			t.Errorf("phase %s has negative wall %d", ph.Kind, ph.WallNS)
		}
	}
	for _, k := range []string{trace.KindAdmission, trace.KindQueue, trace.KindDispatch} {
		if !phases[k] {
			t.Errorf("profile missing %s phase: %+v", k, r.Profile.Phases)
		}
	}
	if r.Profile.CriticalPathNS <= 0 {
		t.Errorf("profile has no critical path: %+v", r.Profile)
	}

	// ProfileHistory < 0 disables the recorder without breaking jobs.
	off := newTestService(t, Config{ProfileHistory: -1})
	if off.FlightRecorder() != nil {
		t.Fatal("negative ProfileHistory should disable the recorder")
	}
	st2, err := off.Submit(Request{
		Tenant: "acme", Name: "wc",
		Spec: Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 100, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, off, st2.ID); final.State != StateSucceeded {
		t.Fatalf("recorder-off job: %s (%s)", final.State, final.Err)
	}
}

// TestProfilePersistenceAcrossRestart is the acceptance criterion: a
// profile recorded by one service process is reproduced byte-for-byte —
// profile JSON and Perfetto export alike — by a fresh process pointed at
// the same profile store, and new runs never reuse persisted run IDs.
func TestProfilePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	submit := func(s *Service) JobStatus {
		st, err := s.Submit(Request{
			Tenant: "acme", Name: "wc",
			Spec: Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 300, Seed: 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		final := waitTerminal(t, s, st.ID)
		if final.State != StateSucceeded {
			t.Fatalf("job %s: %s (%s)", st.ID, final.State, final.Err)
		}
		return final
	}
	render := func(r *profile.Record) (profJSON, perfetto []byte) {
		var err error
		profJSON, err = json.MarshalIndent(r.Profile, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return profJSON, buf.Bytes()
	}

	s1, err := New(Config{CatalogScale: 500, ProfileStore: profileStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	final := submit(s1)
	r1 := waitAnnotated(t, s1.FlightRecorder(), final.RunID)
	wantProf, wantTrace := render(r1)
	if _, err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// "Restart": a fresh service over the same directory.
	s2, err := New(Config{CatalogScale: 500, ProfileStore: profileStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s2.Kill(); s2.Close() }()
	r2, ok := s2.FlightRecorder().Get(final.RunID)
	if !ok {
		t.Fatalf("run %d not rehydrated after restart", final.RunID)
	}
	gotProf, gotTrace := render(r2)
	if !bytes.Equal(wantProf, gotProf) {
		t.Errorf("profile JSON changed across restart:\nbefore: %s\nafter:  %s", wantProf, gotProf)
	}
	if !bytes.Equal(wantTrace, gotTrace) {
		t.Errorf("Perfetto export changed across restart:\nbefore: %s\nafter:  %s", wantTrace, gotTrace)
	}
	if len(r2.Profile.Phases) < 3 {
		t.Errorf("rehydrated profile lost its phases: %+v", r2.Profile.Phases)
	}

	// The rehydrated history seeds the run tracker: the next run must
	// get a fresh ID, not overwrite the persisted profile.
	final2 := submit(s2)
	if final2.RunID <= final.RunID {
		t.Errorf("post-restart run ID %d not past persisted %d", final2.RunID, final.RunID)
	}
}
