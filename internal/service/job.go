package service

import (
	"crypto/sha256"
	"encoding/hex"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// Job states. A job the service has acked always reaches exactly one
// of the three terminal states — never silently disappears — which is
// the invariant the drain chaos suite pins.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is one accepted submission. Mutable fields are guarded by the
// owning Service's mutex; the done channel closes when the job reaches
// a terminal state.
type Job struct {
	id        string
	tenant    string
	name      string
	req       Request
	submitted time.Time
	// buildPlan lowers the spec when the job starts; SQL is compiled at
	// submit (good errors at the door), workload inputs are generated
	// lazily so admission stays O(1).
	buildPlan func() (*plan.Plan, error)

	state           string
	acked           time.Time // admission ack (end of Submit)
	started         time.Time
	ended           time.Time
	err             string
	cancelRequested bool
	cancel          func()
	// runID keys the job's engine run in the telemetry hub's run
	// tracker and the flight recorder; 0 if the job never reached the
	// executor (cancelled while queued, plan build failed).
	runID int64

	records   []data.Record
	digest    string
	outRecs   int64
	failovers int
	platforms []engine.PlatformID

	done chan struct{}
}

// ID returns the job's service-assigned identity.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the API's JSON view of one job.
type JobStatus struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	Name      string    `json:"name"`
	State     string    `json:"state"`
	Submitted time.Time `json:"submitted_at"`
	Started   time.Time `json:"started_at"`
	Ended     time.Time `json:"ended_at"`
	Err       string    `json:"error,omitempty"`
	// Records is the result cardinality (terminal successful jobs only).
	Records int `json:"records,omitempty"`
	// Digest is the SHA-256 of the result's canonical binary encoding —
	// what the chaos suite compares for byte identity.
	Digest string `json:"digest,omitempty"`
	// Platforms lists the platforms the final execution plan used.
	Platforms []string `json:"platforms,omitempty"`
	Failovers int      `json:"failovers,omitempty"`
	// RunID keys the job's engine run into the monitoring endpoints
	// /runs/{id}/profile and /runs/{id}/trace.json; 0 if the job never
	// reached the executor.
	RunID int64 `json:"run_id,omitempty"`
}

// terminal reports whether the state is final.
func terminal(state string) bool {
	switch state {
	case StateSucceeded, StateFailed, StateCancelled:
		return true
	}
	return false
}

// statusLocked snapshots the job; the caller holds the service mutex.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.id, Tenant: j.tenant, Name: j.name, State: j.state,
		Submitted: j.submitted, Started: j.started, Ended: j.ended,
		Err: j.err, Digest: j.digest, Failovers: j.failovers,
		RunID: j.runID,
	}
	if j.state == StateSucceeded {
		st.Records = len(j.records)
	}
	for _, p := range j.platforms {
		st.Platforms = append(st.Platforms, string(p))
	}
	return st
}

// Digest is the canonical result fingerprint: SHA-256 over the
// records' binary encoding. Two result sets are byte-identical iff
// their digests match.
func Digest(recs []data.Record) (string, error) {
	h := sha256.New()
	if _, err := data.WriteBinary(h, recs); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
