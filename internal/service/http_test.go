package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func startAPI(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func postJob(t *testing.T, base string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestHTTPSubmitPollResult walks the documented client flow: POST
// /jobs → 202 + Location, poll GET /jobs/{id} to terminal, fetch
// /jobs/{id}/result and check the digest matches the status.
func TestHTTPSubmitPollResult(t *testing.T) {
	_, srv := startAPI(t, Config{})
	resp, payload := postJob(t, srv.URL, Request{
		Tenant: "acme",
		Spec:   Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 300, Seed: 5},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", resp.StatusCode, payload)
	}
	var acked JobStatus
	if err := json.Unmarshal(payload, &acked); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+acked.ID {
		t.Fatalf("Location = %q, want /jobs/%s", loc, acked.ID)
	}

	var final JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, srv.URL+"/jobs/"+acked.ID, &final)
		if terminal(final.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", final.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final.State != StateSucceeded {
		t.Fatalf("job ended %s (%s)", final.State, final.Err)
	}

	var result struct {
		ID      string  `json:"id"`
		Records int     `json:"records"`
		Digest  string  `json:"digest"`
		Rows    [][]any `json:"rows"`
	}
	if resp := getJSON(t, srv.URL+"/jobs/"+acked.ID+"/result", &result); resp.StatusCode != http.StatusOK {
		t.Fatalf("result returned %d", resp.StatusCode)
	}
	if result.Digest != final.Digest || len(result.Rows) != final.Records {
		t.Fatalf("result (%d rows, %s) disagrees with status (%d, %s)",
			len(result.Rows), result.Digest, final.Records, final.Digest)
	}

	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, srv.URL+"/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != acked.ID {
		t.Fatalf("job list = %+v", list.Jobs)
	}
}

func TestHTTPShedReturns429WithRetryAfter(t *testing.T) {
	s, srv := startAPI(t, Config{MaxActiveJobs: 1, QueueDepth: 1, PoolSize: 1})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.SchedulerPool().Release()

	req := Request{Tenant: "acme", Spec: Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 100}}
	resp, payload := postJob(t, srv.URL, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, payload)
	}
	var acked JobStatus
	json.Unmarshal(payload, &acked)
	waitState(t, s, acked.ID, StateRunning)
	if resp, _ := postJob(t, srv.URL, req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}

	resp, payload = postJob(t, srv.URL, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s, want 429", resp.StatusCode, payload)
	}
	// RFC 9110: Retry-After carries whole seconds. A sub-second shed
	// hint must clamp up to 1, never render as "0" (which clients read
	// as "retry immediately" — the opposite of shedding).
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
	}
	if secs < 1 {
		t.Errorf("Retry-After = %d, want ≥ 1", secs)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := startAPI(t, Config{})
	cases := []string{
		`{`,                      // broken JSON
		`{"unknown_field": 1}`,   // unknown field
		`{"spec":{"kind":"no"}}`, // unknown kind
		`{"spec":{"kind":"sql","query":"SELEC"}}`, // parse error
	}
	for i, body := range cases {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: %d, want 400", i, resp.StatusCode)
		}
	}
	if resp := getJSON(t, srv.URL+"/jobs/j-404", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/jobs/j-404/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	s, srv := startAPI(t, Config{MaxActiveJobs: 1, PoolSize: 1})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.SchedulerPool().Release()

	req := Request{Tenant: "acme", Spec: Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 100}}
	_, payload := postJob(t, srv.URL, req)
	var running JobStatus
	json.Unmarshal(payload, &running)
	waitState(t, s, running.ID, StateRunning)
	_, payload = postJob(t, srv.URL, req)
	var queued JobStatus
	json.Unmarshal(payload, &queued)

	httpReq, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != StateCancelled {
		t.Fatalf("cancel returned %d state %s", resp.StatusCode, st.State)
	}
	// A cancelled-but-running job turns terminal once the executor
	// unwinds; the result endpoint reports the conflict meanwhile.
	if resp := getJSON(t, srv.URL+"/jobs/"+running.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: %d, want 409", resp.StatusCode)
	}
}

func TestHTTPTenantsHealthzMetricsRuns(t *testing.T) {
	s, srv := startAPI(t, Config{})
	_, payload := postJob(t, srv.URL, Request{
		Tenant: "acme",
		Spec:   Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 200, Seed: 2},
	})
	var acked JobStatus
	json.Unmarshal(payload, &acked)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, acked.ID); err != nil {
		t.Fatal(err)
	}

	var tenants struct {
		Tenants []TenantStatus `json:"tenants"`
	}
	getJSON(t, srv.URL+"/tenants", &tenants)
	if len(tenants.Tenants) != 1 || tenants.Tenants[0].Name != "acme" || tenants.Tenants[0].Accepted != 1 {
		t.Fatalf("tenants = %+v", tenants.Tenants)
	}

	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// The telemetry endpoints ride on the same port.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"service_queue_depth", "service_jobs_accepted_total", "service_pool_slots"} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	var runs struct {
		Runs []json.RawMessage `json:"runs"`
	}
	getJSON(t, srv.URL+"/runs", &runs)
	if len(runs.Runs) == 0 {
		t.Fatal("/runs reports no runs after an executed job")
	}

	// Draining flips /healthz to 503.
	go s.Drain(context.Background())
	deadline := time.Now().Add(10 * time.Second)
	for {
		if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := postJob(t, srv.URL, Request{Spec: Spec{Kind: KindWorkload, Workload: WorkloadFanout}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	s := newTestService(t, Config{})
	srv, addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over Serve: %d", resp.StatusCode)
	}
}
