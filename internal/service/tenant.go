// Per-tenant state: concurrency quotas, a token-bucket rate limit on
// submissions, and tenant-level platform health. The health layer
// folds the engine's per-platform circuit breakers into per-tenant
// isolation: a tenant whose jobs keep dying on one platform gets that
// platform excluded from its own future plans (the optimizer simply
// never assigns it), while every other tenant keeps using it — one
// tenant's broken UDFs or poisoned pin cannot quarantine a platform
// service-wide.

package service

import (
	"math"
	"sort"
	"time"

	"rheem/internal/core/engine"
)

// Quota bounds one tenant's footprint on the service.
type Quota struct {
	// MaxConcurrent bounds the tenant's simultaneously running jobs
	// (default 2). Jobs over the bound wait in the tenant's queue.
	MaxConcurrent int `json:"max_concurrent"`
	// MaxQueued bounds the tenant's accepted-but-not-started jobs
	// (default 16); submissions past it are shed with 429.
	MaxQueued int `json:"max_queued"`
	// RatePerSec refills the tenant's submission token bucket; 0 means
	// no rate limit.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: 2×RatePerSec, minimum 1).
	Burst int `json:"burst,omitempty"`
}

func (q Quota) withDefaults() Quota {
	if q.MaxConcurrent <= 0 {
		q.MaxConcurrent = 2
	}
	if q.MaxQueued <= 0 {
		q.MaxQueued = 16
	}
	if q.RatePerSec > 0 && q.Burst <= 0 {
		q.Burst = int(math.Max(1, 2*q.RatePerSec))
	}
	return q
}

// bucket is a token-bucket rate limiter with on-demand refill; the
// clock is injected so tests are deterministic.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(q Quota, now time.Time) *bucket {
	if q.RatePerSec <= 0 {
		return nil // unlimited
	}
	return &bucket{rate: q.RatePerSec, burst: float64(q.Burst), tokens: float64(q.Burst), last: now}
}

// take consumes one token, or reports how long until one is available.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// platformBreaker is the tenant-level breaker for one platform.
type platformBreaker struct {
	failures  int // consecutive job failures attributed to the platform
	openUntil time.Time
}

// tenant is the service's per-tenant record. All fields are guarded by
// the Service mutex.
type tenant struct {
	name    string
	quota   Quota
	bucket  *bucket
	queue   []*Job // accepted, waiting to start (FIFO)
	running int

	accepted  int64
	shed      int64
	completed int64
	failed    int64
	cancelled int64

	breakers map[engine.PlatformID]*platformBreaker
}

// TenantStatus is the /tenants JSON view of one tenant.
type TenantStatus struct {
	Name      string `json:"name"`
	Quota     Quota  `json:"quota"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Accepted  int64  `json:"accepted"`
	Shed      int64  `json:"shed"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	Cancelled int64  `json:"cancelled"`
	// ExcludedPlatforms lists platforms the tenant's health layer is
	// currently keeping out of this tenant's plans.
	ExcludedPlatforms []string `json:"excluded_platforms,omitempty"`
}

// excluded returns the platforms currently open for the tenant,
// sorted. Expired exclusions (cooldown passed) are dropped in place —
// the next job is the half-open probe.
func (t *tenant) excludedLocked(now time.Time) []engine.PlatformID {
	var out []engine.PlatformID
	for id, br := range t.breakers {
		if br.openUntil.IsZero() {
			continue
		}
		if now.After(br.openUntil) {
			// Half-open: let the next job probe the platform again. The
			// failure count survives, so one more failure re-opens.
			br.openUntil = time.Time{}
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reportOutcome updates the tenant's breakers from a finished job:
// platforms a failed job ran on accrue a consecutive-failure count and
// open after threshold; any success on a platform resets it.
func (t *tenant) reportOutcomeLocked(platforms []engine.PlatformID, failed bool, threshold int, cooldown time.Duration, now time.Time) {
	if t.breakers == nil {
		t.breakers = map[engine.PlatformID]*platformBreaker{}
	}
	for _, id := range platforms {
		br := t.breakers[id]
		if br == nil {
			br = &platformBreaker{}
			t.breakers[id] = br
		}
		if failed {
			br.failures++
			if br.failures >= threshold && br.openUntil.IsZero() {
				br.openUntil = now.Add(cooldown)
			}
		} else {
			br.failures = 0
			br.openUntil = time.Time{}
		}
	}
}
