package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"rheem/internal/core/metrics"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.CatalogScale == 0 {
		cfg.CatalogScale = 500
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Kill()
		s.Close()
	})
	return s
}

func waitTerminal(t *testing.T, s *Service, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// waitState polls until the job reaches state (dispatch is
// asynchronous; tests that reason about queue occupancy first wait for
// the head job to actually start).
func waitState(t *testing.T, s *Service, id, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == state {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, state)
		}
		time.Sleep(time.Millisecond)
	}
}

func wordcountReq(tenant string, n int, seed uint64) Request {
	return Request{
		Tenant: tenant,
		Spec:   Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: n, Seed: seed},
	}
}

func TestSubmitRunsWorkloadJob(t *testing.T) {
	s := newTestService(t, Config{})
	st, err := s.Submit(wordcountReq("acme", 500, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("acked job state %q, want queued", st.State)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job ended %s (%s), want succeeded", final.State, final.Err)
	}
	if final.Records == 0 || final.Digest == "" {
		t.Fatalf("succeeded job missing results: records=%d digest=%q", final.Records, final.Digest)
	}
	if len(final.Platforms) == 0 {
		t.Fatal("succeeded job reports no platforms")
	}
	recs, digest, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != final.Records || digest != final.Digest {
		t.Fatalf("Result disagrees with status: %d/%s vs %d/%s",
			len(recs), digest, final.Records, final.Digest)
	}
}

func TestSubmitRunsSQLJob(t *testing.T) {
	s := newTestService(t, Config{})
	st, err := s.Submit(Request{
		Tenant: "acme",
		Spec:   Spec{Kind: KindSQL, Query: "SELECT well, AVG(pressure) AS p FROM sensors GROUP BY well ORDER BY well LIMIT 5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("sql job ended %s (%s)", final.State, final.Err)
	}
	if final.Records != 5 {
		t.Fatalf("sql job returned %d rows, want 5", final.Records)
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	s := newTestService(t, Config{})
	cases := []Request{
		{Spec: Spec{Kind: "nope"}},
		{Spec: Spec{Kind: KindWorkload, Workload: "mystery"}},
		{Spec: Spec{Kind: KindSQL, Query: "SELEC broken"}},
		{Spec: Spec{Kind: KindSQL, Query: "SELECT x FROM missing_table"}},
		{Spec: Spec{Kind: KindWorkload, Workload: WorkloadFanout}, Platform: "quantum"},
		{Spec: Spec{Kind: KindWorkload, Workload: WorkloadFanout}, DeadlineMS: -1},
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("case %d: bad request accepted", i)
		}
	}
	if jobs := s.Jobs(); len(jobs) != 0 {
		t.Fatalf("rejected submissions left %d jobs behind", len(jobs))
	}
}

// TestDeterministicAcrossSubmissions pins the service's core replay
// property: the same spec always produces the same digest, which is
// what lets the chaos suite demand byte identity.
func TestDeterministicAcrossSubmissions(t *testing.T) {
	s := newTestService(t, Config{})
	var digests []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(wordcountReq("acme", 400, 9))
		if err != nil {
			t.Fatal(err)
		}
		final := waitTerminal(t, s, st.ID)
		if final.State != StateSucceeded {
			t.Fatalf("run %d ended %s (%s)", i, final.State, final.Err)
		}
		digests = append(digests, final.Digest)
	}
	if digests[0] != digests[1] || digests[1] != digests[2] {
		t.Fatalf("same spec produced different digests: %v", digests)
	}
}

// TestQueueFullSheds freezes execution by holding the only scheduler
// pool slot, fills the bounded queue, and checks the next submission
// is shed with a retry hint — deterministically, no timing games.
func TestQueueFullSheds(t *testing.T) {
	s := newTestService(t, Config{
		MaxActiveJobs: 1,
		QueueDepth:    2,
		PoolSize:      1,
	})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	released := false
	defer func() {
		if !released {
			s.SchedulerPool().Release()
		}
	}()

	var ids []string
	// One job occupies the single active slot (blocked on the pool),
	// two more fill the queue.
	for i := 0; i < 3; i++ {
		st, err := s.Submit(wordcountReq("acme", 100, uint64(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
		if i == 0 {
			// Dispatch is asynchronous: wait until the head job holds the
			// active slot so the next two really land in the queue.
			waitState(t, s, st.ID, StateRunning)
		}
	}
	_, err := s.Submit(wordcountReq("acme", 100, 99))
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overflow submission got %v, want ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed without a retry hint: %v", shed)
	}

	// Unfreeze: everything accepted must finish.
	s.SchedulerPool().Release()
	released = true
	for _, id := range ids {
		if final := waitTerminal(t, s, id); final.State != StateSucceeded {
			t.Fatalf("job %s ended %s (%s)", id, final.State, final.Err)
		}
	}
	snap := s.Hub().Registry().Snapshot()
	if got, ok := snap.Counter("service_jobs_shed_total", map[string]string{"tenant": "acme", "reason": "queue-full"}); !ok || got != 1 {
		t.Fatalf("shed counter = %v (present %v), want 1", got, ok)
	}
}

// TestTenantQueueQuota sheds one tenant's overflow while another
// tenant still gets in: per-tenant bounds, not just the global one.
func TestTenantQueueQuota(t *testing.T) {
	s := newTestService(t, Config{
		MaxActiveJobs: 1,
		QueueDepth:    64,
		PoolSize:      1,
		DefaultQuota:  Quota{MaxConcurrent: 1, MaxQueued: 1},
	})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.SchedulerPool().Release()

	// Tenant A: one running (pool-blocked), one queued; the third is shed.
	for i := 0; i < 2; i++ {
		st, err := s.Submit(wordcountReq("a", 100, uint64(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i == 0 {
			waitState(t, s, st.ID, StateRunning)
		}
	}
	var shed *ShedError
	if _, err := s.Submit(wordcountReq("a", 100, 9)); !errors.As(err, &shed) {
		t.Fatalf("tenant overflow got %v, want ShedError", err)
	}
	// Tenant B is unaffected by A's full queue.
	if _, err := s.Submit(wordcountReq("b", 100, 1)); err != nil {
		t.Fatalf("tenant b blocked by tenant a's backlog: %v", err)
	}
}

// TestRateLimitSheds drives the token bucket with an injected clock.
func TestRateLimitSheds(t *testing.T) {
	var fake atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	fake.Store(0)
	clock := func() time.Time { return base.Add(time.Duration(fake.Load())) }
	s := newTestService(t, Config{
		Clock:  clock,
		Quotas: map[string]Quota{"metered": {RatePerSec: 1, Burst: 1}},
	})
	if _, err := s.Submit(wordcountReq("metered", 100, 1)); err != nil {
		t.Fatalf("first submission within burst: %v", err)
	}
	_, err := s.Submit(wordcountReq("metered", 100, 2))
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-rate submission got %v, want ShedError", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > time.Second {
		t.Fatalf("retry hint %v, want (0s, 1s]", shed.RetryAfter)
	}
	// Advance past the refill; the bucket admits again.
	fake.Store(int64(1100 * time.Millisecond))
	if _, err := s.Submit(wordcountReq("metered", 100, 3)); err != nil {
		t.Fatalf("post-refill submission: %v", err)
	}
	// Unmetered tenants never shed on rate.
	if _, err := s.Submit(wordcountReq("free", 100, 4)); err != nil {
		t.Fatalf("unmetered tenant: %v", err)
	}
}

// TestRoundRobinFairness gives tenant A a backlog and checks tenant
// B's single job doesn't wait behind all of it.
func TestRoundRobinFairness(t *testing.T) {
	s := newTestService(t, Config{
		MaxActiveJobs: 1,
		PoolSize:      1,
		DefaultQuota:  Quota{MaxConcurrent: 1, MaxQueued: 16},
	})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	var aIDs []string
	for i := 0; i < 4; i++ {
		st, err := s.Submit(wordcountReq("a", 100, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		aIDs = append(aIDs, st.ID)
	}
	bSt, err := s.Submit(wordcountReq("b", 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	s.SchedulerPool().Release()

	bFinal := waitTerminal(t, s, bSt.ID)
	lastA := waitTerminal(t, s, aIDs[len(aIDs)-1])
	if bFinal.State != StateSucceeded || lastA.State != StateSucceeded {
		t.Fatalf("jobs failed: b=%s a=%s", bFinal.State, lastA.State)
	}
	if !bFinal.Started.Before(lastA.Started) {
		t.Fatalf("tenant b started %v, after tenant a's whole backlog (last started %v) — starved",
			bFinal.Started, lastA.Started)
	}
}

// TestCancelQueuedAndRunning cancels a queued job (terminal instantly)
// and a running one (terminal when the executor unwinds).
func TestCancelQueuedAndRunning(t *testing.T) {
	s := newTestService(t, Config{MaxActiveJobs: 1, PoolSize: 1})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	released := false
	defer func() {
		if !released {
			s.SchedulerPool().Release()
		}
	}()

	running, err := s.Submit(wordcountReq("acme", 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(wordcountReq("acme", 200, 2))
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job after cancel: %s, want cancelled", st.State)
	}

	// Wait until the first job is actually running (pool-blocked), then
	// cancel it; the held slot means only cancellation can finish it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Status(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started (state %s)", running.ID, st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, running.ID)
	if final.State != StateCancelled {
		t.Fatalf("running job after cancel ended %s (%s), want cancelled", final.State, final.Err)
	}

	// Cancelling a terminal job is a no-op, not an error.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatalf("cancel of terminal job: %v", err)
	}
	if _, err := s.Cancel("j-404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown job: %v, want ErrNotFound", err)
	}
}

// TestDeadlineFailsJob submits a job that cannot finish in a
// millisecond and checks it fails with a deadline error rather than
// hanging or vanishing.
func TestDeadlineFailsJob(t *testing.T) {
	s := newTestService(t, Config{MaxActiveJobs: 1, PoolSize: 1})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.SchedulerPool().Release()
	// The held pool slot guarantees the deadline expires while the job
	// is frozen mid-execution — no dependence on workload size.
	st, err := s.Submit(Request{
		Tenant:     "acme",
		Spec:       Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 200},
		DeadlineMS: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateFailed {
		t.Fatalf("deadline job ended %s (%s), want failed", final.State, final.Err)
	}
	if final.Err == "" {
		t.Fatal("deadline failure carries no error")
	}
}

// TestTenantBreakerIsolation: a tenant whose jobs keep failing gets
// the implicated platform excluded from its own plans — and only its
// own. Failures are manufactured with unmeetable deadlines, which the
// service attributes to the platforms the plan ran on.
func TestTenantBreakerIsolation(t *testing.T) {
	s := newTestService(t, Config{
		MaxActiveJobs:    1,
		PoolSize:         1,
		FailureThreshold: 2,
		Cooldown:         time.Hour,
	})
	failOne := func() JobStatus {
		if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		st, err := s.Submit(Request{
			Tenant:     "trouble",
			Spec:       Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 200},
			DeadlineMS: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		final := waitTerminal(t, s, st.ID)
		s.SchedulerPool().Release()
		if final.State != StateFailed {
			t.Fatalf("frozen job ended %s (%s), want failed", final.State, final.Err)
		}
		if len(final.Platforms) == 0 {
			t.Fatal("failed job carries no platform attribution")
		}
		return final
	}
	first := failOne()
	failOne()

	var excluded []string
	for _, tn := range s.Tenants() {
		if tn.Name == "trouble" {
			excluded = tn.ExcludedPlatforms
		}
	}
	if len(excluded) == 0 {
		t.Fatalf("no platform excluded for tenant after %d deadline failures", 2)
	}

	// The sick tenant's next job avoids the excluded platform and can
	// still succeed on the remaining ones.
	st, err := s.Submit(wordcountReq("trouble", 200, 5))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("post-breaker job ended %s (%s)", final.State, final.Err)
	}
	for _, p := range final.Platforms {
		for _, ex := range excluded {
			if p == ex {
				t.Fatalf("tenant's plan still used excluded platform %s", p)
			}
		}
	}

	// A healthy tenant is untouched: same workload, free platform choice.
	st, err = s.Submit(wordcountReq("healthy", 200, 5))
	if err != nil {
		t.Fatal(err)
	}
	healthy := waitTerminal(t, s, st.ID)
	if healthy.State != StateSucceeded {
		t.Fatalf("healthy tenant's job ended %s (%s)", healthy.State, healthy.Err)
	}
	for _, tn := range s.Tenants() {
		if tn.Name == "healthy" && len(tn.ExcludedPlatforms) > 0 {
			t.Fatalf("healthy tenant inherited exclusions %v", tn.ExcludedPlatforms)
		}
	}
	// The failing tenant's first failure must list the platform the
	// healthy tenant is still allowed to use — i.e. exclusion really is
	// per-tenant, not global.
	_ = first
}

// TestJobHistoryEviction bounds the finished-job table.
func TestJobHistoryEviction(t *testing.T) {
	s := newTestService(t, Config{JobHistory: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := s.Submit(wordcountReq("acme", 100, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, st.ID)
		ids = append(ids, st.ID)
	}
	if got := len(s.Jobs()); got != 2 {
		t.Fatalf("job table holds %d jobs, want 2", got)
	}
	if _, err := s.Status(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted job still queryable: %v", err)
	}
	if _, err := s.Status(ids[4]); err != nil {
		t.Fatalf("recent job evicted: %v", err)
	}
}

// TestDrainFinishesAcceptedJobs: drain with work frozen behind the
// pool; once unfrozen everything accepted completes, admission stays
// closed, and the drain metrics fire.
func TestDrainFinishesAcceptedJobs(t *testing.T) {
	s := newTestService(t, Config{MaxActiveJobs: 2, PoolSize: 1, DrainTimeout: 20 * time.Second})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := s.Submit(wordcountReq("acme", 150, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	drainDone := make(chan DrainReport, 1)
	go func() {
		rep, err := s.Drain(context.Background())
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		drainDone <- rep
	}()

	// Wait until the drain has observably begun (the gauge flips before
	// anything else happens), then admission must be closed.
	closedDeadline := time.Now().Add(10 * time.Second)
	for {
		v, _ := s.Hub().Registry().Snapshot().Counter("service_draining", nil)
		if v == 1 {
			break
		}
		if time.Now().After(closedDeadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(wordcountReq("late", 100, 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission mid-drain got %v, want ErrDraining", err)
	}

	s.SchedulerPool().Release()
	rep := <-drainDone
	if rep.Forced {
		t.Fatal("drain had to force-cancel despite released pool")
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("acked job %s lost after drain: %v", id, err)
		}
		if st.State != StateSucceeded {
			t.Fatalf("drained job %s ended %s (%s), want succeeded", id, st.State, st.Err)
		}
	}
	snap := s.Hub().Registry().Snapshot()
	if v, ok := snap.Counter("service_draining", nil); !ok || v != 0 {
		t.Fatalf("service_draining = %v (present %v) after drain, want 0", v, ok)
	}
	if v, ok := snap.Counter("service_drain_seconds", nil); !ok || v <= 0 {
		t.Fatalf("service_drain_seconds = %v (present %v), want > 0", v, ok)
	}
}

// TestDrainTimeoutForceCancels: when in-flight work outlives the
// drain budget it is force-cancelled — observable, never lost.
func TestDrainTimeoutForceCancels(t *testing.T) {
	s := newTestService(t, Config{MaxActiveJobs: 1, PoolSize: 1, DrainTimeout: 50 * time.Millisecond})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.SchedulerPool().Release()

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(wordcountReq("acme", 150, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rep, err := s.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !rep.Forced {
		t.Fatal("drain with a frozen pool finished without forcing")
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("acked job %s lost after forced drain: %v", id, err)
		}
		if st.State != StateCancelled {
			t.Fatalf("forced-drain job %s ended %s, want cancelled", id, st.State)
		}
	}
}

func TestServiceMetricsExposition(t *testing.T) {
	s := newTestService(t, Config{})
	st, err := s.Submit(wordcountReq("acme", 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
	snap := s.Hub().Registry().Snapshot()
	if got, ok := snap.Counter("service_jobs_accepted_total", map[string]string{"tenant": "acme"}); !ok || got != 1 {
		t.Fatalf("accepted counter = %v (present %v), want 1", got, ok)
	}
	if got, ok := snap.Counter("service_jobs_done_total", map[string]string{"tenant": "acme", "state": StateSucceeded}); !ok || got != 1 {
		t.Fatalf("done counter = %v (present %v), want 1", got, ok)
	}
	if n, ok := snap.HistogramCount("service_job_latency_seconds", map[string]string{"tenant": "acme"}); !ok || n != 1 {
		t.Fatalf("latency histogram count = %v (present %v), want 1", n, ok)
	}
}

func TestRunTrackerHistoryBoundedByService(t *testing.T) {
	hub := metrics.NewHub()
	s := newTestService(t, Config{Hub: hub, RunHistory: 3})
	for i := 0; i < 8; i++ {
		st, err := s.Submit(wordcountReq("acme", 100, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, st.ID)
	}
	if got := hub.Runs().Tracked(); got > 3 {
		t.Fatalf("hub tracks %d finished runs, service capped it at 3", got)
	}
}

func TestResultBeforeCompletionConflicts(t *testing.T) {
	s := newTestService(t, Config{MaxActiveJobs: 1, PoolSize: 1})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.SchedulerPool().Release()
	st, err := s.Submit(wordcountReq("acme", 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Result(st.ID); err == nil {
		t.Fatal("result of unfinished job returned without error")
	}
	if _, _, err := s.Result("j-404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("result of unknown job: %v, want ErrNotFound", err)
	}
}

func TestPlatformPinRuns(t *testing.T) {
	s := newTestService(t, Config{})
	for _, pin := range []string{"java", "spark", "relational"} {
		st, err := s.Submit(Request{
			Tenant:   "pinner",
			Spec:     Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 200, Seed: 4},
			Platform: pin,
		})
		if err != nil {
			t.Fatalf("pin %s: %v", pin, err)
		}
		final := waitTerminal(t, s, st.ID)
		if final.State != StateSucceeded {
			t.Fatalf("pinned(%s) job ended %s (%s)", pin, final.State, final.Err)
		}
		if len(final.Platforms) != 1 || final.Platforms[0] != pin {
			t.Fatalf("pinned(%s) job ran on %v", pin, final.Platforms)
		}
	}
}

func TestLoadGenerator(t *testing.T) {
	s := newTestService(t, Config{MaxActiveJobs: 4})
	res, err := RunLoad(s, LoadConfig{
		Tenants:       2,
		JobsPerTenant: 3,
		Concurrency:   2,
		Specs: []Spec{
			{Kind: KindWorkload, Workload: WorkloadWordcount, N: 150, Seed: 1},
			{Kind: KindWorkload, Workload: WorkloadFanout, N: 32, Branches: 2, Seed: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 6 || res.Succeeded != 6 {
		t.Fatalf("load run: %+v, want 6 accepted and succeeded", res)
	}
	if res.Throughput <= 0 || res.P99 <= 0 || res.P50 > res.P99 {
		t.Fatalf("implausible load metrics: %+v", res)
	}
}

func ExampleService() {
	s, err := New(Config{CatalogScale: 200})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	st, _ := s.Submit(Request{
		Tenant: "demo",
		Spec:   Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 100, Seed: 1},
	})
	final, _ := s.Wait(context.Background(), st.ID)
	fmt.Println(final.State)
	// Output: succeeded
}
