// Chaos coverage for the service's central promise: an acked job is
// never silently lost, and whatever the server returns for a spec is
// byte-identical to the spec's clean offline execution — through
// drain, kill-mid-drain, and platform failure under concurrent
// multi-tenant load.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rheem"
	"rheem/internal/core/fault"
	"rheem/internal/platform/javaengine"
)

// expectedDigests executes each spec on a clean, unfaulted service and
// returns its canonical result digest — the offline ground truth the
// chaos runs are held to.
func expectedDigests(t *testing.T, specs []Spec) []string {
	t.Helper()
	clean := newTestService(t, Config{})
	out := make([]string, len(specs))
	for i, spec := range specs {
		st, err := clean.Submit(Request{Tenant: "oracle", Spec: spec})
		if err != nil {
			t.Fatalf("oracle submit %d: %v", i, err)
		}
		final := waitTerminal(t, clean, st.ID)
		if final.State != StateSucceeded {
			t.Fatalf("oracle run %d ended %s (%s)", i, final.State, final.Err)
		}
		out[i] = final.Digest
	}
	return out
}

func chaosSpecs() []Spec {
	return []Spec{
		{Kind: KindWorkload, Workload: WorkloadWordcount, N: 300, Seed: 11},
		{Kind: KindWorkload, Workload: WorkloadSensor, N: 400, Wells: 8, Seed: 12},
		{Kind: KindWorkload, Workload: WorkloadFanout, N: 48, Branches: 3, Seed: 13},
	}
}

// TestChaosDrainUnderLoad runs concurrent multi-tenant submitters,
// drains mid-stream, and verifies the no-loss contract: every job the
// server acked is terminal afterwards, every success byte-identical
// to the clean run, and nothing was force-cancelled (the drain budget
// was generous).
func TestChaosDrainUnderLoad(t *testing.T) {
	specs := chaosSpecs()
	want := expectedDigests(t, specs)

	s := newTestService(t, Config{
		MaxActiveJobs: 3,
		DrainTimeout:  60 * time.Second,
	})
	type acked struct {
		id   string
		spec int
	}
	var (
		mu    sync.Mutex
		acks  []acked
		wg    sync.WaitGroup
		ready = make(chan struct{}) // closed once enough jobs are acked
		once  sync.Once
	)
	const tenants = 3
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; ; i++ {
				specIdx := (tn + i) % len(specs)
				st, err := s.Submit(Request{
					Tenant: fmt.Sprintf("tenant-%d", tn),
					Spec:   specs[specIdx],
				})
				if errors.Is(err, ErrDraining) {
					return
				}
				var shed *ShedError
				if errors.As(err, &shed) {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if err != nil {
					t.Errorf("tenant %d submit: %v", tn, err)
					return
				}
				mu.Lock()
				acks = append(acks, acked{id: st.ID, spec: specIdx})
				n := len(acks)
				mu.Unlock()
				if n >= 12 {
					once.Do(func() { close(ready) })
				}
			}
		}(tn)
	}

	<-ready
	rep, err := s.Drain(context.Background())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if rep.Forced {
		t.Fatal("drain force-cancelled despite a 60s budget")
	}
	if rep.Duration <= 0 {
		t.Fatalf("drain report duration %v", rep.Duration)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(acks) < 12 {
		t.Fatalf("only %d jobs acked", len(acks))
	}
	for _, a := range acks {
		st, err := s.Status(a.id)
		if err != nil {
			t.Fatalf("acked job %s lost after drain: %v", a.id, err)
		}
		if st.State != StateSucceeded {
			t.Fatalf("acked job %s ended %s (%s) after graceful drain", a.id, st.State, st.Err)
		}
		if st.Digest != want[a.spec] {
			t.Fatalf("job %s digest %s differs from clean run %s — results are not byte-identical",
				a.id, st.Digest, want[a.spec])
		}
	}
}

// TestChaosKillMidDrain escalates a hanging drain the way rheem-serve
// does on a second SIGTERM: work is frozen behind the scheduler pool,
// the drain can't finish, Kill cuts the engine context — and still no
// acked job is lost: every one lands in an observable terminal state.
func TestChaosKillMidDrain(t *testing.T) {
	s := newTestService(t, Config{
		MaxActiveJobs: 2,
		PoolSize:      1,
		DrainTimeout:  60 * time.Second, // the drain would hang without Kill
	})
	if err := s.SchedulerPool().Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.SchedulerPool().Release()

	var ids []string
	for i := 0; i < 6; i++ {
		st, err := s.Submit(Request{
			Tenant: fmt.Sprintf("tenant-%d", i%2),
			Spec:   Spec{Kind: KindWorkload, Workload: WorkloadWordcount, N: 200, Seed: uint64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	drainDone := make(chan DrainReport, 1)
	go func() {
		rep, _ := s.Drain(context.Background())
		drainDone <- rep
	}()
	// Wait for the drain to observably start, then escalate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, _ := s.Hub().Registry().Snapshot().Counter("service_draining", nil); v == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	s.Kill()

	select {
	case <-drainDone:
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not finish after Kill")
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("acked job %s lost after kill: %v", id, err)
		}
		if st.State != StateCancelled {
			t.Fatalf("job %s ended %s after kill, want cancelled", id, st.State)
		}
		if st.Ended.IsZero() {
			t.Fatalf("job %s terminal without an end timestamp", id)
		}
	}
	if _, err := s.Submit(Request{Spec: Spec{Kind: KindWorkload, Workload: WorkloadFanout}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after kill: %v, want ErrDraining", err)
	}
}

// TestChaosPlatformDeathUnderLoad injects a platform that dies after a
// handful of executions while three tenants hammer it with pinned
// jobs. Cross-platform failover must rescue every job, and every
// result must be byte-identical to the clean run — the acked-job
// contract holds through real platform failure.
func TestChaosPlatformDeathUnderLoad(t *testing.T) {
	specs := chaosSpecs()
	want := expectedDigests(t, specs)

	s := newTestService(t, Config{
		MaxActiveJobs: 3,
		Prepare: func(c *rheem.Context) error {
			flaky := fault.Wrap(javaengine.New(javaengine.Config{}), fault.Options{
				ID: "flaky",
				// Dies after 5 executions — mid-load, deterministically.
				Schedules: []fault.Schedule{fault.FailAfterN(5, nil)},
			})
			return fault.Register(c.Registry(), flaky, javaengine.ID)
		},
	})

	type result struct {
		id   string
		spec int
	}
	var (
		mu   sync.Mutex
		jobs []result
		wg   sync.WaitGroup
	)
	const tenants, perTenant = 3, 4
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				specIdx := (tn + i) % len(specs)
				st, sheds, err := submitPersistent(s, Request{
					Tenant:   fmt.Sprintf("tenant-%d", tn),
					Spec:     specs[specIdx],
					Platform: "flaky", // everyone starts on the doomed platform
				}, 30*time.Second)
				_ = sheds
				if err != nil {
					t.Errorf("tenant %d submit: %v", tn, err)
					return
				}
				mu.Lock()
				jobs = append(jobs, result{id: st.ID, spec: specIdx})
				mu.Unlock()
			}
		}(tn)
	}
	wg.Wait()

	failovers := 0
	for _, jr := range jobs {
		final := waitTerminal(t, s, jr.id)
		if final.State != StateSucceeded {
			t.Fatalf("job %s on the dying platform ended %s (%s) — failover did not rescue it",
				jr.id, final.State, final.Err)
		}
		if final.Digest != want[jr.spec] {
			t.Fatalf("job %s digest %s differs from clean run %s after failover",
				jr.id, final.Digest, want[jr.spec])
		}
		failovers += final.Failovers
	}
	if got := tenants * perTenant; len(jobs) != got {
		t.Fatalf("acked %d jobs, want %d", len(jobs), got)
	}
	if failovers == 0 {
		t.Fatal("the platform died but no job reported a failover — the fault never fired")
	}
}
